lib/treewidth/elimination.ml: Fun Graph Hashtbl List Queue Tree_decomposition
