type node =
  | Leaf
  | Introduce of int * int
  | Forget of int * int
  | Join of int * int

type t = {
  nodes : node array;
  bags : int list array;
  root : int;
}

(* Builder accumulating nodes in topological order (children first). *)
type builder = { mutable acc : (node * int list) list; mutable next : int }

let emit b node bag =
  b.acc <- (node, bag) :: b.acc;
  b.next <- b.next + 1;
  b.next - 1

let rec emit_leaf_chain b bag =
  (* Build Leaf, then introduce the bag's vertices one by one. *)
  match bag with
  | [] -> emit b Leaf []
  | v :: rest ->
    let below = emit_leaf_chain b rest in
    emit b (Introduce (v, below)) bag

(* Morph a child whose bag is [from_bag] into [to_bag]: forget the extras,
   then introduce the missing. *)
let morph b child ~from_bag ~to_bag =
  let extras = List.filter (fun v -> not (List.mem v to_bag)) from_bag in
  let missing = List.filter (fun v -> not (List.mem v from_bag)) to_bag in
  let after_forgets =
    List.fold_left
      (fun (node, bag) v ->
        let bag' = List.filter (( <> ) v) bag in
        (emit b (Forget (v, node)) bag', bag'))
      (child, from_bag) extras
  in
  List.fold_left
    (fun (node, bag) v ->
      let bag' = List.sort Int.compare (v :: bag) in
      (emit b (Introduce (v, node)) bag', bag'))
    after_forgets missing
  |> fst

let of_decomposition td =
  let bags =
    Array.map (List.sort_uniq Int.compare) td.Tree_decomposition.bags
  in
  let n = Tree_decomposition.node_count td in
  let adj = Tree_decomposition.adjacency td in
  let b = { acc = []; next = 0 } in
  let root_original = 0 in
  (* Recursively build the nice tree for the subtree rooted at [u]; the
     result's bag is [bags.(u)]. *)
  let rec build u parent =
    let children = List.filter (fun v -> v <> parent) adj.(u) in
    let child_nodes =
      List.map
        (fun c ->
          let sub = build c u in
          morph b sub ~from_bag:bags.(c) ~to_bag:bags.(u))
        children
    in
    match child_nodes with
    | [] -> emit_leaf_chain b bags.(u)
    | [ single ] -> single
    | first :: rest ->
      List.fold_left
        (fun acc node -> emit b (Join (acc, node)) bags.(u))
        first rest
  in
  let top =
    if n = 0 then emit b Leaf []
    else begin
      let body = build root_original (-1) in
      (* Forget the root bag down to the empty bag. *)
      morph b body ~from_bag:bags.(root_original) ~to_bag:[]
    end
  in
  let items = List.rev b.acc in
  {
    nodes = Array.of_list (List.map fst items);
    bags = Array.of_list (List.map (fun (_, bag) -> List.sort Int.compare bag) items);
    root = top;
  }

let width t = Array.fold_left (fun acc bag -> max acc (List.length bag - 1)) (-1) t.bags

let node_count t = Array.length t.nodes

let validate t =
  let n = node_count t in
  t.root >= 0 && t.root < n
  && t.bags.(t.root) = []
  &&
  let ok = ref true in
  Array.iteri
    (fun i node ->
      let expect_bag cond = if not cond then ok := false in
      match node with
      | Leaf -> expect_bag (t.bags.(i) = [])
      | Introduce (v, c) ->
        expect_bag (c < i);
        expect_bag (not (List.mem v t.bags.(c)));
        expect_bag (t.bags.(i) = List.sort Int.compare (v :: t.bags.(c)))
      | Forget (v, c) ->
        expect_bag (c < i);
        expect_bag (List.mem v t.bags.(c));
        expect_bag (t.bags.(i) = List.filter (( <> ) v) t.bags.(c))
      | Join (c1, c2) ->
        expect_bag (c1 < i && c2 < i);
        expect_bag (t.bags.(c1) = t.bags.(c2));
        expect_bag (t.bags.(i) = t.bags.(c1)))
    t.nodes;
  !ok

let covers t g =
  (* Reuse the generic validator by viewing the nice tree as an ordinary
     decomposition. *)
  let edges = ref [] in
  Array.iteri
    (fun i node ->
      match node with
      | Leaf -> ()
      | Introduce (_, c) | Forget (_, c) -> edges := (c, i) :: !edges
      | Join (c1, c2) ->
        edges := (c1, i) :: !edges;
        edges := (c2, i) :: !edges)
    t.nodes;
  let td = { Tree_decomposition.bags = t.bags; tree_edges = List.rev !edges } in
  Tree_decomposition.validate_graph g td
