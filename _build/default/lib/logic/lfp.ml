open Relational

type definition = {
  name : string;
  vars : string array;
  body : Formula.t;
}

type t = { definitions : definition list }

type stats = { stages : int }

(* Check that every occurrence of the defined symbols is under an even
   number of negations ([Forall] counts through its De Morgan reading,
   which does not flip the polarity of the quantified body's atoms). *)
let rec positive_in names polarity = function
  | Formula.True | Formula.False | Formula.Equal _ -> true
  | Formula.Atom (r, _) -> polarity || not (List.mem r names)
  | Formula.Not g -> positive_in names (not polarity) g
  | Formula.And gs | Formula.Or gs -> List.for_all (positive_in names polarity) gs
  | Formula.Exists (_, g) | Formula.Forall (_, g) -> positive_in names polarity g

let make definitions =
  let names = List.map (fun d -> d.name) definitions in
  if List.length (List.sort_uniq compare names) <> List.length names then
    invalid_arg "Lfp.make: duplicate definition names";
  List.iter
    (fun d ->
      let params = Array.to_list d.vars in
      List.iter
        (fun v ->
          if not (List.mem v params) then
            invalid_arg
              (Printf.sprintf "Lfp.make: free variable %s outside parameters of %s" v
                 d.name))
        (Formula.free_variables d.body);
      if not (positive_in names true d.body) then
        invalid_arg ("Lfp.make: negative occurrence of a defined symbol in " ^ d.name))
    definitions;
  { definitions }

(* Extend a structure with the current interpretations of the defined
   symbols. *)
let extend structure relations =
  let vocab =
    List.fold_left
      (fun acc (name, r) -> Vocabulary.add acc name (Relation.arity r))
      (Structure.vocabulary structure)
      relations
  in
  let base = Structure.create vocab ~size:(Structure.size structure) in
  let with_old =
    Structure.fold_tuples
      (fun name t acc -> Structure.add_tuple acc name t)
      structure base
  in
  List.fold_left
    (fun acc (name, r) ->
      Relation.fold (fun t acc -> Structure.add_tuple acc name t) r acc)
    with_old relations

let evaluate_definition extended d =
  let table = Fo_eval.eval extended d.body in
  (* Arrange the table's columns in parameter order; parameters missing from
     the body's free variables range over the whole universe. *)
  let n = Structure.size extended in
  let rows = ref [] in
  let free = table.Fo_eval.vars in
  let position v =
    let i = ref (-1) in
    Array.iteri (fun j w -> if w = v && !i < 0 then i := j) free;
    !i
  in
  let positions = Array.map position d.vars in
  List.iter
    (fun row ->
      (* Expand unconstrained parameters. *)
      let rec fill i acc =
        if i = Array.length positions then rows := Array.of_list (List.rev acc) :: !rows
        else if positions.(i) >= 0 then fill (i + 1) (row.(positions.(i)) :: acc)
        else
          for v = 0 to n - 1 do
            fill (i + 1) (v :: acc)
          done
      in
      fill 0 [])
    table.Fo_eval.rows;
  Relation.of_list (Array.length d.vars) !rows

let fixpoint_with_stats structure system =
  let current =
    ref
      (List.map
         (fun d -> (d.name, Relation.empty (Array.length d.vars)))
         system.definitions)
  in
  let stages = ref 0 in
  let changed = ref true in
  while !changed do
    incr stages;
    let extended = extend structure !current in
    let next =
      List.map
        (fun d ->
          let fresh = evaluate_definition extended d in
          (* Monotonicity: stages only grow; union in the previous stage to
             be safe against duplicated variables in heads. *)
          (d.name, Relation.union fresh (List.assoc d.name !current)))
        system.definitions
    in
    changed :=
      List.exists2
        (fun (_, old_rel) (_, new_rel) -> not (Relation.equal old_rel new_rel))
        !current next;
    current := next
  done;
  (!current, { stages = !stages })

let fixpoint structure system = fst (fixpoint_with_stats structure system)

let holds structure system sentence =
  let relations = fixpoint structure system in
  Fo_eval.holds (extend structure relations) sentence
