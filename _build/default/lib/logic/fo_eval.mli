open Relational

(** Bottom-up evaluation of first-order formulas on finite structures.

    Intermediate results are tables of assignments over the subformula's
    free variables, so a formula of width k costs at most [n^k] rows per
    node — polynomial combined complexity for bounded-variable formulas
    (FO^k), per Section 5. *)

type table = {
  vars : string array;  (** Column names. *)
  rows : Tuple.t list;  (** Assignments, one value per column. *)
}

val eval : Structure.t -> Formula.t -> table
(** The set of satisfying assignments over the formula's free variables.
    Missing relation symbols denote empty relations. *)

val holds : Structure.t -> Formula.t -> bool
(** Truth of a sentence. @raise Invalid_argument on free variables. *)

val satisfying_count : Structure.t -> Formula.t -> int
