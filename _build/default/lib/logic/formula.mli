(** First-order formulas over a relational vocabulary, with the
    bounded-variable fragments FO^k and ∃FO^k of Sections 4 and 5.

    The width of a formula is the number of distinct variable names it uses;
    a formula of width k lies in FO^k.  Bounded-variable formulas are
    evaluated in polynomial time (Vardi), which is what makes the
    treewidth-to-FO^{k+1} translation of Lemma 5.2 an algorithm. *)

type t =
  | True
  | False
  | Atom of string * string array
  | Equal of string * string
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string * t
  | Forall of string * t

val free_variables : t -> string list
(** In first-occurrence order. *)

val all_variables : t -> string list
(** Every distinct variable name occurring (free or bound). *)

val width : t -> int
(** Number of distinct variable names: the k of FO^k. *)

val is_sentence : t -> bool

val is_existential_positive : t -> bool
(** Built from atoms and equalities by conjunction, disjunction and
    existential quantification only (the ∃FO^k fragment). *)

val conj : t list -> t
(** Conjunction, flattening [True] and short-circuiting [False]. *)

val exists_many : string list -> t -> t

val pp : Format.formatter -> t -> unit
