open Relational
open Treewidth

let sentence_of_structure ?decomposition a =
  let td =
    match decomposition with
    | Some td -> td
    | None -> Td_solver.decompose a
  in
  if not (Tree_decomposition.validate_structure a td) then
    invalid_arg "Translate.sentence_of_structure: invalid decomposition";
  let bags =
    Array.map (List.sort_uniq Int.compare) td.Tree_decomposition.bags
  in
  let nodes = Tree_decomposition.node_count td in
  if Structure.size a = 0 then Formula.True
  else begin
    let adj = Tree_decomposition.adjacency td in
    (* Assign every fact to the first node (in DFS preorder) whose bag
       contains all its elements. *)
    let preorder = ref [] in
    let parent = Array.make nodes (-1) in
    let rec dfs u p =
      parent.(u) <- p;
      preorder := u :: !preorder;
      List.iter (fun v -> if v <> p then dfs v u) adj.(u)
    in
    dfs 0 (-1);
    let preorder = List.rev !preorder in
    let facts =
      List.rev (Structure.fold_tuples (fun name t acc -> (name, t) :: acc) a [])
    in
    let atoms_of = Array.make nodes [] in
    List.iter
      (fun (name, t) ->
        let elems = Tuple.elements t in
        let node =
          List.find (fun u -> List.for_all (fun x -> List.mem x bags.(u)) elems) preorder
        in
        atoms_of.(node) <- (name, t) :: atoms_of.(node))
      facts;
    (* Variable pool of size width+1; elements alive in the current bag keep
       their name down the tree. *)
    let pool_size =
      Array.fold_left (fun acc bag -> max acc (List.length bag)) 1 bags
    in
    let pool = List.init pool_size (Printf.sprintf "x%d") in
    let rec build u naming =
      (* [naming]: assoc element -> variable name, defined on the bag of the
         parent (restricted here to the shared part). *)
      let bag = bags.(u) in
      let inherited = List.filter (fun (x, _) -> List.mem x bag) naming in
      let used = List.map snd inherited in
      let fresh_names = List.filter (fun v -> not (List.mem v used)) pool in
      let new_elements =
        List.filter (fun x -> not (List.mem_assoc x inherited)) bag
      in
      let added = List.map2 (fun x v -> (x, v)) new_elements
          (List.filteri (fun i _ -> i < List.length new_elements) fresh_names)
      in
      let naming_here = inherited @ added in
      let name x = List.assoc x naming_here in
      let atoms =
        List.map
          (fun (rel, t) -> Formula.Atom (rel, Array.map name t))
          atoms_of.(u)
      in
      let children =
        List.filter (fun v -> v <> parent.(u)) adj.(u)
        |> List.map (fun v -> build v naming_here)
      in
      Formula.exists_many (List.map snd added) (Formula.conj (atoms @ children))
    in
    build 0 []
  end

let holds_via_fo a b =
  if Structure.size a = 0 then true
  else Fo_eval.holds b (sentence_of_structure a)
