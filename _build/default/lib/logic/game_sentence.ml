open Relational

let xvar i = Printf.sprintf "x%d" i

let yvar i = Printf.sprintf "y%d" i

let t_name = "T"

(* All m-tuples over [0..k-1]. *)
let position_tuples k m =
  let rec loop = function
    | 0 -> [ [] ]
    | i -> List.concat_map (fun t -> List.init k (fun c -> c :: t)) (loop (i - 1))
  in
  List.map Array.of_list (loop m)

let mismatches vocab ~k =
  let non_functional =
    List.concat
      (List.init k (fun i ->
           List.filter_map
             (fun j ->
               if j > i then
                 Some
                   (Formula.And
                      [
                        Formula.Equal (xvar i, xvar j);
                        Formula.Not (Formula.Equal (yvar i, yvar j));
                      ])
               else None)
             (List.init k Fun.id)))
  in
  let broken_facts =
    List.concat_map
      (fun (name, arity) ->
        List.map
          (fun positions ->
            Formula.And
              [
                Formula.Atom (Sum.left_name name, Array.map xvar positions);
                Formula.Not (Formula.Atom (Sum.right_name name, Array.map yvar positions));
              ])
          (position_tuples k arity))
      (Vocabulary.symbols vocab)
  in
  non_functional @ broken_facts

let t_args k = Array.append (Array.init k xvar) (Array.init k yvar)

let system vocab ~k =
  if k < 1 then invalid_arg "Game_sentence.system: k must be positive";
  let repebble j =
    Formula.Exists
      ( xvar j,
        Formula.And
          [
            Formula.Atom (Sum.d1, [| xvar j |]);
            Formula.Forall
              ( yvar j,
                Formula.Or
                  [
                    Formula.Not (Formula.Atom (Sum.d2, [| yvar j |]));
                    Formula.Atom (t_name, t_args k);
                  ] );
          ] )
  in
  let body =
    Formula.Or (mismatches vocab ~k @ List.init k repebble)
  in
  Lfp.make [ { Lfp.name = t_name; vars = t_args k; body } ]

let sentence ~k =
  let d1_guard = Formula.And (List.init k (fun i -> Formula.Atom (Sum.d1, [| xvar i |]))) in
  let d2_guard = Formula.And (List.init k (fun i -> Formula.Atom (Sum.d2, [| yvar i |]))) in
  let inner =
    List.fold_right
      (fun i acc -> Formula.Forall (yvar i, acc))
      (List.init k Fun.id)
      (Formula.Or [ Formula.Not d2_guard; Formula.Atom (t_name, t_args k) ])
  in
  List.fold_right
    (fun i acc -> Formula.Exists (xvar i, acc))
    (List.init k Fun.id)
    (Formula.And [ d1_guard; inner ])

let spoiler_wins ~k a b =
  let sum = Sum.encode a b in
  Lfp.holds sum (system (Structure.vocabulary a) ~k) (sentence ~k)
