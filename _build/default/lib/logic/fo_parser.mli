(** Parser for first-order formulas:

    {v
      exists x. exists y. E(x, y) & ~(x = y) | forall z. E(z, z)
    v}

    Grammar (loosest binding first): [|] , [&] , [~] , quantifiers
    ([exists v.] / [forall v.] extend to the right as far as possible),
    atoms [R(x, y)], equality [x = y], [true], [false], parentheses. *)

exception Parse_error of string

val parse : string -> Formula.t
(** @raise Parse_error on malformed input. *)

val parse_opt : string -> Formula.t option
