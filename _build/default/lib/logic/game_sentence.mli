open Relational

(** Theorem 4.7(1): the existential k-pebble game as a least fixed-point
    sentence over the tagged sum [A + B].

    The 2k-ary relation [T(x1..xk, y1..yk)] — "the Spoiler wins from the
    configuration pebbling [x] in [A] and [y] in [B]" — is defined by the
    positive system

    {v T(x,y) <- theta(x,y) \/ \/_j  EX x_j (D1(x_j) /\
                                       ALL y_j (D2(y_j) -> T(x,y))) v}

    where [theta] collects the immediate mismatches (non-functional
    correspondence, or a pebbled fact of [A] absent from [B]).  The Spoiler
    wins the game iff [A+B] satisfies [EX x (D1 /\ ALL y (D2 -> T))].

    Together with {!Pebble.Game} (the combinatorial algorithm) and
    {!Datalog.Rho} (the k-Datalog program for fixed [B]) this gives three
    independent implementations of the same query, cross-checked in the
    test suite. *)

val system : Vocabulary.t -> k:int -> Lfp.t
(** The positive definition of [T] over [sigma_1 + sigma_2]. *)

val sentence : k:int -> Formula.t
(** The Spoiler-wins sentence (references [T]). *)

val spoiler_wins : k:int -> Structure.t -> Structure.t -> bool
(** Evaluate the LFP sentence on [Sum.encode a b].
    @raise Invalid_argument when [k < 1] or the vocabularies differ. *)
