exception Parse_error of string

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Amp
  | Bar
  | Tilde
  | Equals
  | Eof

let is_ident_start c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      tokens := Ident (String.sub input start (!i - start)) :: !tokens
    end
    else begin
      (match c with
      | '(' -> tokens := Lparen :: !tokens
      | ')' -> tokens := Rparen :: !tokens
      | ',' -> tokens := Comma :: !tokens
      | '.' -> tokens := Dot :: !tokens
      | '&' -> tokens := Amp :: !tokens
      | '|' -> tokens := Bar :: !tokens
      | '~' -> tokens := Tilde :: !tokens
      | '=' -> tokens := Equals :: !tokens
      | _ -> raise (Parse_error (Printf.sprintf "unexpected character %C" c)));
      incr i
    end
  done;
  List.rev (Eof :: !tokens)

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> Eof | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token what =
  if peek st = token then advance st else raise (Parse_error ("expected " ^ what))

(* disjunction := conjunction ('|' conjunction)*
   conjunction := unary ('&' unary)*
   unary := '~' unary | 'exists' v '.' disjunction | 'forall' v '.' disjunction
          | primary
   primary := 'true' | 'false' | IDENT '(' args ')' | IDENT '=' IDENT
            | '(' disjunction ')' *)
let rec parse_disjunction st =
  let first = parse_conjunction st in
  let rec loop acc =
    if peek st = Bar then begin
      advance st;
      loop (parse_conjunction st :: acc)
    end
    else
      match acc with [ f ] -> f | fs -> Formula.Or (List.rev fs)
  in
  loop [ first ]

and parse_conjunction st =
  let first = parse_unary st in
  let rec loop acc =
    if peek st = Amp then begin
      advance st;
      loop (parse_unary st :: acc)
    end
    else
      match acc with [ f ] -> f | fs -> Formula.And (List.rev fs)
  in
  loop [ first ]

and parse_unary st =
  match peek st with
  | Tilde ->
    advance st;
    Formula.Not (parse_unary st)
  | Ident "exists" ->
    advance st;
    let v = parse_ident st "a variable" in
    expect st Dot "'.'";
    Formula.Exists (v, parse_disjunction st)
  | Ident "forall" ->
    advance st;
    let v = parse_ident st "a variable" in
    expect st Dot "'.'";
    Formula.Forall (v, parse_disjunction st)
  | _ -> parse_primary st

and parse_ident st what =
  match peek st with
  | Ident name ->
    advance st;
    name
  | _ -> raise (Parse_error ("expected " ^ what))

and parse_primary st =
  match peek st with
  | Lparen ->
    advance st;
    let f = parse_disjunction st in
    expect st Rparen "')'";
    f
  | Ident "true" ->
    advance st;
    Formula.True
  | Ident "false" ->
    advance st;
    Formula.False
  | Ident name -> (
    advance st;
    match peek st with
    | Lparen ->
      advance st;
      let rec args acc =
        let a = parse_ident st "an argument" in
        if peek st = Comma then begin
          advance st;
          args (a :: acc)
        end
        else List.rev (a :: acc)
      in
      let arguments = if peek st = Rparen then [] else args [] in
      expect st Rparen "')'";
      Formula.Atom (name, Array.of_list arguments)
    | Equals ->
      advance st;
      let rhs = parse_ident st "a variable" in
      Formula.Equal (name, rhs)
    | _ -> raise (Parse_error ("expected '(' or '=' after " ^ name)))
  | _ -> raise (Parse_error "expected a formula")

let parse input =
  let st = { tokens = tokenize input } in
  let f = parse_disjunction st in
  if peek st <> Eof then raise (Parse_error "trailing input after formula");
  f

let parse_opt input = match parse input with f -> Some f | exception Parse_error _ -> None
