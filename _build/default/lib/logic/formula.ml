type t =
  | True
  | False
  | Atom of string * string array
  | Equal of string * string
  | Not of t
  | And of t list
  | Or of t list
  | Exists of string * t
  | Forall of string * t

let distinct vars =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    vars

let rec free_variables_list f =
  match f with
  | True | False -> []
  | Atom (_, args) -> Array.to_list args
  | Equal (x, y) -> [ x; y ]
  | Not g -> free_variables_list g
  | And gs | Or gs -> List.concat_map free_variables_list gs
  | Exists (x, g) | Forall (x, g) ->
    List.filter (fun v -> v <> x) (free_variables_list g)

let free_variables f = distinct (free_variables_list f)

let rec all_variables_list f =
  match f with
  | True | False -> []
  | Atom (_, args) -> Array.to_list args
  | Equal (x, y) -> [ x; y ]
  | Not g -> all_variables_list g
  | And gs | Or gs -> List.concat_map all_variables_list gs
  | Exists (x, g) | Forall (x, g) -> x :: all_variables_list g

let all_variables f = distinct (all_variables_list f)

let width f = List.length (all_variables f)

let is_sentence f = free_variables f = []

let rec is_existential_positive = function
  | True | False | Atom _ | Equal _ -> true
  | And gs | Or gs -> List.for_all is_existential_positive gs
  | Exists (_, g) -> is_existential_positive g
  | Not _ | Forall _ -> false

let conj fs =
  let fs = List.filter (fun f -> f <> True) fs in
  if List.mem False fs then False
  else
    match fs with
    | [] -> True
    | [ f ] -> f
    | fs -> And fs

let exists_many vars f = List.fold_right (fun v acc -> Exists (v, acc)) vars f

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | False -> Format.pp_print_string ppf "false"
  | Atom (r, args) ->
    Format.fprintf ppf "%s(%a)" r
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_string)
      (Array.to_list args)
  | Equal (x, y) -> Format.fprintf ppf "%s = %s" x y
  | Not g -> Format.fprintf ppf "~%a" pp_delim g
  | And gs ->
    Format.fprintf ppf "%a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ") pp_delim)
      gs
  | Or gs ->
    Format.fprintf ppf "%a"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ") pp_delim)
      gs
  | Exists (x, g) -> Format.fprintf ppf "exists %s. %a" x pp g
  | Forall (x, g) -> Format.fprintf ppf "forall %s. %a" x pp g

and pp_delim ppf f =
  match f with
  | True | False | Atom _ | Equal _ | Not _ -> pp ppf f
  | _ -> Format.fprintf ppf "(%a)" pp f
