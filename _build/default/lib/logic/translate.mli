open Relational
open Treewidth

(** Lemma 5.2: a structure [A] of treewidth [k] yields a Boolean
    conjunctive query [Q_A] expressible in ∃FO^{k+1}, computable in
    polynomial time from a tree decomposition.  Combined with
    polynomial-time FO^k evaluation this proves Theorem 5.4:
    [hom(A, B)] iff [B ⊨ Q_A]. *)

val sentence_of_structure : ?decomposition:Tree_decomposition.t -> Structure.t -> Formula.t
(** The ∃FO^{w+1} sentence equivalent to [Q_A], where [w] is the width of
    the decomposition used (min-fill by default).  The result is
    existential-positive and uses at most [w+1] distinct variables. *)

val holds_via_fo : Structure.t -> Structure.t -> bool
(** [holds_via_fo a b] decides [hom(A, B)] by evaluating the translated
    sentence on [B] — the Theorem 5.4 algorithm, independent of the direct
    dynamic programming in {!Treewidth.Td_solver}. *)
