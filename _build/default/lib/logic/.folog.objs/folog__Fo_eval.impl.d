lib/logic/fo_eval.ml: Array Formula Hashtbl List Relation Relational Structure Tuple
