lib/logic/fo_parser.mli: Formula
