lib/logic/game_sentence.mli: Formula Lfp Relational Structure Vocabulary
