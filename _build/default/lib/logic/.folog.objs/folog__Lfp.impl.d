lib/logic/lfp.ml: Array Fo_eval Formula List Printf Relation Relational Structure Vocabulary
