lib/logic/game_sentence.ml: Array Formula Fun Lfp List Printf Relational Structure Sum Vocabulary
