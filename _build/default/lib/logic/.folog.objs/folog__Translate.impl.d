lib/logic/translate.ml: Array Fo_eval Formula Int List Printf Relational Structure Td_solver Tree_decomposition Treewidth Tuple
