lib/logic/lfp.mli: Formula Relation Relational Structure
