lib/logic/fo_eval.mli: Formula Relational Structure Tuple
