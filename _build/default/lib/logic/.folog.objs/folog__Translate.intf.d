lib/logic/translate.mli: Formula Relational Structure Tree_decomposition Treewidth
