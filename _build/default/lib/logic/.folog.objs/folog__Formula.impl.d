lib/logic/formula.ml: Array Format Hashtbl List
