lib/logic/fo_parser.ml: Array Formula List Printf String
