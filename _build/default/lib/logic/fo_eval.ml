open Relational

type table = { vars : string array; rows : Tuple.t list }

let dedupe rows = List.sort_uniq Tuple.compare rows

(* All assignments over [vars] for a universe of size [n]. *)
let full_table vars n =
  let d = Array.length vars in
  let rows = ref [] in
  let row = Array.make (max d 1) 0 in
  let rec fill i =
    if i = d then rows := Array.sub row 0 d :: !rows
    else
      for v = 0 to n - 1 do
        row.(i) <- v;
        fill (i + 1)
      done
  in
  fill 0;
  { vars; rows = dedupe !rows }

(* Natural join of two tables on their shared columns. *)
let join t1 t2 =
  let shared =
    Array.to_list t1.vars
    |> List.filter_map (fun v ->
           let i = ref (-1) in
           Array.iteri (fun j w -> if w = v && !i < 0 then i := j) t2.vars;
           if !i >= 0 then
             let j = ref 0 in
             Array.iteri (fun k w -> if w = v then j := k) t1.vars;
             Some (!j, !i)
           else None)
  in
  let extra =
    Array.to_list t2.vars
    |> List.mapi (fun i v -> (i, v))
    |> List.filter (fun (_, v) -> not (Array.exists (( = ) v) t1.vars))
  in
  let vars = Array.append t1.vars (Array.of_list (List.map snd extra)) in
  let index = Hashtbl.create (List.length t2.rows) in
  List.iter
    (fun row ->
      let key = Array.of_list (List.map (fun (_, i) -> row.(i)) shared) in
      Hashtbl.add index key row)
    t2.rows;
  let rows =
    List.concat_map
      (fun row1 ->
        let key = Array.of_list (List.map (fun (j, _) -> row1.(j)) shared) in
        List.map
          (fun row2 ->
            Array.append row1 (Array.of_list (List.map (fun (i, _) -> row2.(i)) extra)))
          (Hashtbl.find_all index key))
      t1.rows
  in
  { vars; rows = dedupe rows }

(* Extend a table with extra columns ranging over the whole universe. *)
let expand t extra_vars n =
  List.fold_left
    (fun t v ->
      if Array.exists (( = ) v) t.vars then t
      else
        let rows =
          List.concat_map
            (fun row -> List.init n (fun e -> Array.append row [| e |]))
            t.rows
        in
        { vars = Array.append t.vars [| v |]; rows })
    t extra_vars

(* Reorder/restrict columns to [vars] (which must all be present). *)
let project t vars =
  let positions =
    Array.map
      (fun v ->
        let i = ref (-1) in
        Array.iteri (fun j w -> if w = v && !i < 0 then i := j) t.vars;
        assert (!i >= 0);
        !i)
      vars
  in
  { vars; rows = dedupe (List.map (fun row -> Array.map (fun i -> row.(i)) positions) t.rows) }

let rec eval structure f =
  let n = Structure.size structure in
  match (f : Formula.t) with
  | Formula.True -> { vars = [||]; rows = [ [||] ] }
  | Formula.False -> { vars = [||]; rows = [] }
  | Formula.Equal (x, y) ->
    if x = y then full_table [| x |] n
    else { vars = [| x; y |]; rows = List.init n (fun e -> [| e; e |]) }
  | Formula.Atom (r, args) ->
    let rel =
      match Structure.relation structure r with
      | rel -> rel
      | exception Not_found -> Relation.empty (Array.length args)
    in
    let vars = Array.of_list (Formula.free_variables f) in
    let rows =
      Relation.fold
        (fun t acc ->
          (* Repeated variables must agree. *)
          let assignment = Hashtbl.create 4 in
          let ok = ref true in
          Array.iteri
            (fun i v ->
              match Hashtbl.find_opt assignment v with
              | Some e -> if e <> t.(i) then ok := false
              | None -> Hashtbl.replace assignment v t.(i))
            args;
          if !ok then Array.map (Hashtbl.find assignment) vars :: acc else acc)
        rel []
    in
    { vars; rows = dedupe rows }
  | Formula.Not g ->
    let tg = eval structure g in
    let everything = full_table tg.vars n in
    let present = Hashtbl.create (List.length tg.rows) in
    List.iter (fun row -> Hashtbl.replace present row ()) tg.rows;
    { tg with rows = List.filter (fun row -> not (Hashtbl.mem present row)) everything.rows }
  | Formula.And gs ->
    List.fold_left
      (fun acc g -> join acc (eval structure g))
      { vars = [||]; rows = [ [||] ] }
      gs
  | Formula.Or gs ->
    let vars = Array.of_list (Formula.free_variables f) in
    let tables =
      List.map
        (fun g ->
          let t = expand (eval structure g) (Array.to_list vars) n in
          project t vars)
        gs
    in
    { vars; rows = dedupe (List.concat_map (fun t -> t.rows) tables) }
  | Formula.Exists (x, g) ->
    let tg = eval structure g in
    if not (Array.exists (( = ) x) tg.vars) then
      (* x is not free below: the quantifier only asserts the universe is
         nonempty. *)
      (if n > 0 then tg else { tg with rows = [] })
    else
      let keep =
        Array.of_list (List.filter (fun v -> v <> x) (Array.to_list tg.vars))
      in
      project tg keep
  | Formula.Forall (x, g) -> eval structure (Formula.Not (Exists (x, Formula.Not g)))

let holds structure f =
  if not (Formula.is_sentence f) then
    invalid_arg "Fo_eval.holds: formula has free variables";
  (eval structure f).rows <> []

let satisfying_count structure f = List.length (eval structure f).rows
