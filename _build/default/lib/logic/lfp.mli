open Relational

(** Least fixed-point logic: systems of simultaneous positive first-order
    definitions, evaluated by stage iteration (Section 4).

    A system defines relation symbols [S_1, ..., S_l] by formulas in which
    they occur only positively; the stages converge to the least fixed
    point in polynomially many rounds.  This realizes the LFP sentence of
    Theorem 4.7(1) directly. *)

type definition = {
  name : string;  (** The defined (IDB) relation symbol. *)
  vars : string array;  (** Parameter variables; the arity. *)
  body : Formula.t;  (** May mention every defined symbol, positively. *)
}

type t = { definitions : definition list }

val make : definition list -> t
(** @raise Invalid_argument on duplicate names, free variables of a body
    outside its parameters, or a defined symbol occurring under an odd
    number of negations. *)

type stats = { stages : int }

val fixpoint : Structure.t -> t -> (string * Relation.t) list
(** The least fixed point of the system over the given structure. *)

val fixpoint_with_stats : Structure.t -> t -> (string * Relation.t) list * stats

val holds : Structure.t -> t -> Formula.t -> bool
(** Truth of a sentence evaluated over the structure extended with the
    fixpoint relations. *)
