lib/core/csp.mli: Relational Structure Tuple
