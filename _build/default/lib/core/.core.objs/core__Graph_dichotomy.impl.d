lib/core/graph_dichotomy.ml: Array List Queue Relation Relational Structure Vocabulary
