lib/core/solver.ml: Cq Graph_dichotomy Homomorphism Option Pebble Printf Relational Schaefer Structure Treewidth Vocabulary
