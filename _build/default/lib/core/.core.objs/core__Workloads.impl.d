lib/core/workloads.ml: Array Cq Fun Int List Printf Random Relational Schaefer Structure Vocabulary
