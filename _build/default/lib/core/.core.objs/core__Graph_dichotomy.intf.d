lib/core/graph_dichotomy.mli: Homomorphism Relational Structure
