lib/core/solver.mli: Cq Graph_dichotomy Homomorphism Relational Schaefer Structure
