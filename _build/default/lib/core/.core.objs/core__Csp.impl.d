lib/core/csp.ml: Array Homomorphism List Printf Relation Relational Structure Tuple Vocabulary
