lib/core/workloads.mli: Cq Relational Schaefer Structure Vocabulary
