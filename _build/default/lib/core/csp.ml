open Relational

type constr = { scope : int array; allowed : Tuple.t list }

type t = { num_variables : int; domain_size : int; constraints : constr list }

let make ~num_variables ~domain_size constraints =
  List.iter
    (fun c ->
      Array.iter
        (fun v ->
          if v < 0 || v >= num_variables then
            invalid_arg "Csp.make: variable out of range")
        c.scope;
      List.iter
        (fun t ->
          if Array.length t <> Array.length c.scope then
            invalid_arg "Csp.make: allowed tuple arity mismatch";
          Array.iter
            (fun e ->
              if e < 0 || e >= domain_size then
                invalid_arg "Csp.make: value out of range")
            t)
        c.allowed)
    constraints;
  { num_variables; domain_size; constraints }

let symbol i = Printf.sprintf "C%d" i

let to_homomorphism csp =
  let vocab =
    Vocabulary.create
      (List.mapi (fun i c -> (symbol i, Array.length c.scope)) csp.constraints)
  in
  let a =
    List.fold_left
      (fun (i, acc) c -> (i + 1, Structure.add_tuple acc (symbol i) c.scope))
      (0, Structure.create vocab ~size:csp.num_variables)
      csp.constraints
    |> snd
  in
  let b =
    List.fold_left
      (fun (i, acc) c ->
        ( i + 1,
          List.fold_left (fun acc t -> Structure.add_tuple acc (symbol i) t) acc c.allowed ))
      (0, Structure.create vocab ~size:csp.domain_size)
      csp.constraints
    |> snd
  in
  (a, b)

let of_homomorphism a b =
  let constraints =
    List.rev
      (Structure.fold_tuples
         (fun name t acc ->
           let allowed =
             match Structure.relation b name with
             | r -> Relation.elements r
             | exception Not_found -> []
           in
           { scope = t; allowed } :: acc)
         a [])
  in
  make ~num_variables:(Structure.size a) ~domain_size:(Structure.size b) constraints

let satisfies csp assignment =
  Array.length assignment = csp.num_variables
  && Array.for_all (fun v -> v >= 0 && v < csp.domain_size) assignment
  && List.for_all
       (fun c ->
         let image = Array.map (fun v -> assignment.(v)) c.scope in
         List.exists (Tuple.equal image) c.allowed)
       csp.constraints

let solve csp =
  let a, b = to_homomorphism csp in
  Homomorphism.find a b
