open Relational

type route =
  | Schaefer_direct of Schaefer.Classify.schaefer_class
  | Booleanized of Schaefer.Classify.schaefer_class
  | Graph_target of Graph_dichotomy.verdict
  | Acyclic
  | Bounded_treewidth of int
  | Consistency_refutation of int
  | Backtracking

let route_name = function
  | Schaefer_direct cls -> "schaefer-direct(" ^ Schaefer.Classify.class_name cls ^ ")"
  | Booleanized cls -> "booleanized(" ^ Schaefer.Classify.class_name cls ^ ")"
  | Graph_target Graph_dichotomy.Polynomial -> "hell-nesetril(tractable graph)"
  | Graph_target Graph_dichotomy.Np_complete -> "hell-nesetril(np-complete)"
  | Acyclic -> "acyclic-yannakakis"
  | Bounded_treewidth w -> Printf.sprintf "treewidth-dp(width %d)" w
  | Consistency_refutation k -> Printf.sprintf "%d-consistency" k
  | Backtracking -> "backtracking"

type result = { answer : Homomorphism.mapping option; route : route }

let try_schaefer a b =
  if Structure.size b <> 2 then None
  else
    match Schaefer.Classify.classify b with
    | None -> None
    | Some cls -> (
      match Schaefer.Uniform.solve_direct a b with
      | Schaefer.Uniform.Hom h -> Some { answer = Some h; route = Schaefer_direct cls }
      | Schaefer.Uniform.No_hom -> Some { answer = None; route = Schaefer_direct cls }
      | Schaefer.Uniform.Not_applicable _ -> None)

let try_booleanize ~threshold a b =
  if Structure.size b > threshold || Structure.size b < 1 then None
  else
    match Schaefer.Booleanize.solve a b with
    | Schaefer.Booleanize.Hom h ->
      let bb = Schaefer.Booleanize.encode_target b in
      let cls =
        Option.value ~default:Schaefer.Classify.Affine (Schaefer.Classify.classify bb)
      in
      Some { answer = Some h; route = Booleanized cls }
    | Schaefer.Booleanize.No_hom ->
      let bb = Schaefer.Booleanize.encode_target b in
      let cls =
        Option.value ~default:Schaefer.Classify.Affine (Schaefer.Classify.classify bb)
      in
      Some { answer = None; route = Booleanized cls }
    | Schaefer.Booleanize.Not_schaefer _ -> None
    | exception Invalid_argument _ -> None

let try_graph a b =
  if
    Graph_dichotomy.is_undirected_graph b
    && Vocabulary.equal (Structure.vocabulary a) (Structure.vocabulary b)
    && Graph_dichotomy.complexity b = Graph_dichotomy.Polynomial
  then
    Some
      { answer = Graph_dichotomy.solve a b; route = Graph_target Graph_dichotomy.Polynomial }
  else None

let try_acyclic a b =
  if Treewidth.Hypergraph.is_acyclic a then
    Some { answer = Treewidth.Hypergraph.solve_acyclic a b; route = Acyclic }
  else None

let try_treewidth ~max_treewidth a b =
  let td = Treewidth.Td_solver.decompose a in
  let w = Treewidth.Tree_decomposition.width td in
  if w > max_treewidth then None
  else
    Some
      {
        answer = Treewidth.Td_solver.solve_with_decomposition td a b;
        route = Bounded_treewidth w;
      }

let try_consistency ~k a b =
  if Pebble.Game.spoiler_wins ~k a b then
    Some { answer = None; route = Consistency_refutation k }
  else None

let solve ?(max_treewidth = 3) ?(consistency_k = 2) ?(booleanize_threshold = 4) a b =
  let ( <|> ) r f = match r with Some _ -> r | None -> f () in
  let result =
    try_schaefer a b
    <|> (fun () -> try_graph a b)
    <|> (fun () -> try_booleanize ~threshold:booleanize_threshold a b)
    <|> (fun () -> try_acyclic a b)
    <|> (fun () -> try_treewidth ~max_treewidth a b)
    <|> (fun () -> try_consistency ~k:consistency_k a b)
    <|> fun () -> Some { answer = Homomorphism.find a b; route = Backtracking }
  in
  match result with Some r -> r | None -> assert false

let exists a b = (solve a b).answer <> None

let solve_containment q1 q2 =
  if Cq.Query.arity q1 <> Cq.Query.arity q2 then
    invalid_arg "Solver.solve_containment: head arities differ";
  let d1, _ = Cq.Canonical.database q1 in
  let d2, _ = Cq.Canonical.database q2 in
  let r = solve d2 d1 in
  (r.answer <> None, r.route)
