open Relational

(** Constraint-satisfaction problems in their traditional formulation —
    variables, values, constraints — and the two-way translation to the
    homomorphism formulation that the paper identifies as the common core
    of CSP and conjunctive-query containment. *)

type constr = {
  scope : int array;  (** Variable indices. *)
  allowed : Tuple.t list;  (** Permitted value combinations. *)
}

type t = {
  num_variables : int;
  domain_size : int;
  constraints : constr list;
}

val make : num_variables:int -> domain_size:int -> constr list -> t
(** @raise Invalid_argument on out-of-range variables or values, or on an
    arity mismatch between a scope and its allowed tuples. *)

val to_homomorphism : t -> Structure.t * Structure.t
(** [(A, B)]: one relation symbol per constraint; [A] holds the scope over
    the variables, [B] holds the allowed tuples over the values.
    Assignments satisfying the CSP are exactly homomorphisms [A -> B]. *)

val of_homomorphism : Structure.t -> Structure.t -> t
(** The reverse reading: each fact of [A] is a constraint whose allowed
    tuples are the corresponding relation of [B]. *)

val satisfies : t -> int array -> bool

val solve : t -> int array option
(** Via the homomorphism translation and the MAC backtracking engine. *)
