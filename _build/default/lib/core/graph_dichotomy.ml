open Relational

let edge_symbol g =
  match Vocabulary.symbols (Structure.vocabulary g) with
  | [ (name, 2) ] -> Some name
  | _ -> None

let is_undirected_graph g =
  match edge_symbol g with
  | None -> false
  | Some name ->
    Relation.for_all
      (fun t -> Relation.mem (Structure.relation g name) [| t.(1); t.(0) |])
      (Structure.relation g name)

let require_graph g =
  match edge_symbol g with
  | Some name when is_undirected_graph g -> name
  | _ -> invalid_arg "Graph_dichotomy: not an undirected graph"

let has_loop g =
  match edge_symbol g with
  | None -> false
  | Some name -> Relation.exists (fun t -> t.(0) = t.(1)) (Structure.relation g name)

(* 2-colour the symmetrized edge relation by BFS; [None] when an odd cycle
   (or loop) blocks it. *)
let two_colouring g =
  let n = Structure.size g in
  let adj = Array.make (max n 1) [] in
  let ok = ref true in
  Structure.iter_tuples
    (fun _ t ->
      if t.(0) = t.(1) then ok := false
      else begin
        adj.(t.(0)) <- t.(1) :: adj.(t.(0));
        adj.(t.(1)) <- t.(0) :: adj.(t.(1))
      end)
    g;
  if not !ok then None
  else begin
    let colour = Array.make (max n 1) (-1) in
    let queue = Queue.create () in
    for start = 0 to n - 1 do
      if !ok && colour.(start) < 0 then begin
        colour.(start) <- 0;
        Queue.add start queue;
        while !ok && not (Queue.is_empty queue) do
          let u = Queue.pop queue in
          List.iter
            (fun v ->
              if colour.(v) < 0 then begin
                colour.(v) <- 1 - colour.(u);
                Queue.add v queue
              end
              else if colour.(v) = colour.(u) then ok := false)
            adj.(u)
        done
      end
    done;
    if !ok then Some colour else None
  end

let is_bipartite g = two_colouring g <> None

type verdict = Polynomial | Np_complete

let complexity h =
  ignore (require_graph h);
  if has_loop h || is_bipartite h then Polynomial else Np_complete

let solve g h =
  let h_edges = require_graph h in
  let edge_rel = Structure.relation h h_edges in
  let n = Structure.size g in
  let g_has_edges = Structure.total_tuples g > 0 in
  match Relation.choose (Relation.filter (fun t -> t.(0) = t.(1)) edge_rel) with
  | Some loop -> Some (Array.make n loop.(0))
  | None ->
    if Relation.is_empty edge_rel then begin
      (* Edgeless target: sources with facts cannot map. *)
      if g_has_edges then None
      else if n = 0 then Some [||]
      else if Structure.size h = 0 then None
      else Some (Array.make n 0)
    end
    else if not (is_bipartite h) then
      invalid_arg "Graph_dichotomy.solve: target is NP-complete (Hell-Nesetril)"
    else begin
      (* Bipartite target with an edge: G -> H iff G is 2-colourable. *)
      match two_colouring g with
      | None -> None
      | Some colour -> (
        match Relation.choose edge_rel with
        | Some edge -> Some (Array.map (fun c -> if c = 0 then edge.(0) else edge.(1))
                               (Array.sub colour 0 n))
        | None -> assert false)
    end
