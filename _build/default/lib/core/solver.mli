open Relational

(** The unified uniform solver: given structures [A] and [B], pick the best
    applicable tractable route from the paper and fall back to general
    backtracking search only when none applies.

    Route order:
    + Boolean Schaefer target — direct algorithms of Theorem 3.4;
    + tractable undirected-graph target (Hell–Nešetřil: bipartite or loop);
    + Booleanized Schaefer target (Lemma 3.5) for small non-Boolean targets;
    + acyclic source — Yannakakis semi-joins (querywidth 1);
    + bounded-treewidth source — dynamic programming (Theorem 5.4);
    + k-consistency refutation — the existential k-pebble game
      (Theorems 4.7–4.9), which may settle "no" and always prunes;
    + MAC backtracking (NP-complete in general; Section 2).

    All routes agree on the answer; the benches measure how much each one
    saves on its own instance class. *)

type route =
  | Schaefer_direct of Schaefer.Classify.schaefer_class
  | Booleanized of Schaefer.Classify.schaefer_class
  | Graph_target of Graph_dichotomy.verdict
  | Acyclic
  | Bounded_treewidth of int  (** Width of the decomposition used. *)
  | Consistency_refutation of int  (** Number of pebbles. *)
  | Backtracking

val route_name : route -> string

type result = {
  answer : Homomorphism.mapping option;
  route : route;  (** The route that produced the answer. *)
}

val solve :
  ?max_treewidth:int ->
  ?consistency_k:int ->
  ?booleanize_threshold:int ->
  Structure.t ->
  Structure.t ->
  result
(** [max_treewidth] (default 3) caps the decomposition width the DP route
    accepts; [consistency_k] (default 2) is the pebble count of the
    refutation pass; [booleanize_threshold] (default 4) caps [|B|] for the
    Booleanization attempt. *)

val exists : Structure.t -> Structure.t -> bool

val solve_containment : Cq.Query.t -> Cq.Query.t -> bool * route
(** [Q1 ⊆ Q2] through the same dispatcher: restrictions on [Q2] surface as
    source-side structure (treewidth/acyclicity), restrictions on [Q1] as
    target-side structure (Schaefer after Booleanization). *)
