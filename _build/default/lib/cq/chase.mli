open Relational

(** The chase: conjunctive-query containment under tuple-generating
    dependencies (inclusion dependencies, foreign keys, ...), the classic
    extension of the Chandra–Merlin test used by optimizers.

    A TGD [body -> head] asserts that whenever the body matches, the head
    must too (head variables absent from the body are existential).
    Chasing a database applies all dependencies to a fixpoint, inventing
    labelled nulls (fresh elements) for existentials; containment under a
    set of TGDs reduces to evaluating [Q2] over the chased canonical
    database of [Q1]. *)

type tgd = { body : Query.atom list; head : Query.atom list }

exception Diverged

val tgd : body:(string * string list) list -> head:(string * string list) list -> tgd
(** @raise Invalid_argument on arity conflicts or an empty body/head. *)

val frontier : tgd -> string list
(** Variables shared between body and head. *)

val existentials : tgd -> string list
(** Head variables absent from the body (chased as fresh nulls). *)

val is_weakly_acyclic : tgd list -> bool
(** The standard position-graph test guaranteeing chase termination. *)

val chase : ?max_steps:int -> tgd list -> Structure.t -> Structure.t
(** Restricted chase to a fixpoint (a trigger fires only when its head is
    not already satisfied).  Existing elements keep their identity; nulls
    are appended.  @raise Diverged after [max_steps] (default 1000) trigger
    firings. *)

val contained_under : ?max_steps:int -> tgd list -> Query.t -> Query.t -> bool
(** [Q1 ⊆_Σ Q2]: containment over all databases satisfying the
    dependencies.  Sound and complete when the chase terminates.
    @raise Diverged as {!chase}; @raise Invalid_argument on head-arity
    mismatch. *)
