open Relational

let dist_pred i = Printf.sprintf "__dist%d" i

let var_index q =
  let vars = Query.variables q in
  List.mapi (fun i v -> (v, i)) vars

let build q ~with_markers =
  let index = var_index q in
  let lookup v = List.assoc v index in
  let body_vocab = Query.body_vocabulary q in
  let vocab =
    if with_markers then
      List.fold_left
        (fun acc i -> Vocabulary.add acc (dist_pred i) 1)
        body_vocab
        (List.init (Query.arity q) Fun.id)
    else body_vocab
  in
  let base = Structure.create vocab ~size:(List.length index) in
  let with_body =
    List.fold_left
      (fun acc (a : Query.atom) ->
        Structure.add_tuple acc a.pred (Array.map lookup a.args))
      base q.Query.body
  in
  let db =
    if with_markers then
      snd
        (Array.fold_left
           (fun (i, acc) v ->
             (i + 1, Structure.add_tuple acc (dist_pred i) [| lookup v |]))
           (0, with_body) q.Query.head)
    else with_body
  in
  (db, index)

let database q = build q ~with_markers:true

let database_no_head q = build q ~with_markers:false

let boolean_query a =
  let body =
    List.rev
      (Structure.fold_tuples
         (fun name t acc ->
           (name, List.map (Printf.sprintf "v%d") (Array.to_list t)) :: acc)
         a [])
  in
  Query.make ~head:[] body

let to_query ?(head_pred = "Q") ~arity ~names structure =
  let head =
    List.init arity (fun i ->
        match Relation.elements (Structure.relation structure (dist_pred i)) with
        | [ t ] -> names t.(0)
        | [] -> invalid_arg (Printf.sprintf "Canonical.to_query: missing marker %d" i)
        | _ -> invalid_arg (Printf.sprintf "Canonical.to_query: duplicated marker %d" i))
  in
  let is_marker name =
    String.length name > 6 && String.sub name 0 6 = "__dist"
  in
  let body =
    List.rev
      (Structure.fold_tuples
         (fun name t acc ->
           if is_marker name then acc
           else (name, List.map names (Array.to_list t)) :: acc)
         structure [])
  in
  Query.make ~head_pred ~head body
