open Relational

(** Conjunctive-query containment, evaluation and minimization.

    Containment is decided by the Chandra–Merlin homomorphism criterion:
    [Q1 ⊆ Q2] iff there is a homomorphism [D_{Q2} -> D_{Q1}] between the
    canonical databases (Theorem 2.1). *)

val contained : Query.t -> Query.t -> bool
(** [contained q1 q2] decides [q1 ⊆ q2].
    @raise Invalid_argument when head arities differ. *)

val containment_witness : Query.t -> Query.t -> (string * string) list option
(** The witnessing variable mapping (variables of [q2] to variables of
    [q1]), when containment holds. *)

val contained_via_evaluation : Query.t -> Query.t -> bool
(** The second characterization of Theorem 2.1: evaluate [q2] over the
    frozen body of [q1] and test whether the frozen head tuple is in the
    answer.  Must agree with {!contained}; exposed for cross-validation. *)

val equivalent : Query.t -> Query.t -> bool

val evaluate : Query.t -> Structure.t -> Tuple.t list
(** [Q(D)]: the answer relation, as tuples of elements of [D], sorted. *)

val minimize : Query.t -> Query.t
(** An equivalent query with the minimum number of body atoms, obtained as
    the core of the canonical database.  Variable names of surviving atoms
    are inherited from the input. *)

val contained_two_atom : Query.t -> Query.t -> bool
(** Saraiya's tractable case via Booleanization (Proposition 3.6): decides
    [q1 ⊆ q2] in polynomial time when every predicate occurs at most twice
    in the body of [q1].
    @raise Invalid_argument if [q1] is not a two-atom query or head arities
    differ. *)
