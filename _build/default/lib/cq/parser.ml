exception Parse_error of string

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile
  | Period
  | Eof

let is_ident_start c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      tokens := Ident (String.sub input start (!i - start)) :: !tokens
    end
    else begin
      (match c with
      | '(' -> tokens := Lparen :: !tokens
      | ')' -> tokens := Rparen :: !tokens
      | ',' -> tokens := Comma :: !tokens
      | '.' -> tokens := Period :: !tokens
      | ':' ->
        if !i + 1 < n && input.[!i + 1] = '-' then begin
          tokens := Turnstile :: !tokens;
          incr i
        end
        else raise (Parse_error (Printf.sprintf "unexpected ':' at offset %d" !i))
      | _ -> raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c !i)));
      incr i
    end
  done;
  List.rev (Eof :: !tokens)

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> Eof | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token what =
  if peek st = token then advance st
  else raise (Parse_error ("expected " ^ what))

let parse_ident st what =
  match peek st with
  | Ident name ->
    advance st;
    name
  | _ -> raise (Parse_error ("expected " ^ what))

(* varlist := epsilon | IDENT (',' IDENT)* *)
let parse_args st =
  if peek st = Rparen then []
  else begin
    let rec loop acc =
      let v = parse_ident st "a variable" in
      if peek st = Comma then begin
        advance st;
        loop (v :: acc)
      end
      else List.rev (v :: acc)
    in
    loop []
  end

let parse_atom st =
  let pred = parse_ident st "a predicate" in
  expect st Lparen "'('";
  let args = parse_args st in
  expect st Rparen "')'";
  (pred, args)

let parse string =
  let st = { tokens = tokenize string } in
  let head_pred = parse_ident st "the head predicate" in
  let head =
    if peek st = Lparen then begin
      advance st;
      let args = parse_args st in
      expect st Rparen "')'";
      args
    end
    else []
  in
  expect st Turnstile "':-'";
  let rec atoms acc =
    let a = parse_atom st in
    if peek st = Comma then begin
      advance st;
      atoms (a :: acc)
    end
    else List.rev (a :: acc)
  in
  let body = atoms [] in
  if peek st = Period then advance st;
  if peek st <> Eof then raise (Parse_error "trailing input after query");
  try Query.make ~head_pred ~head body
  with Invalid_argument msg -> raise (Parse_error msg)

let parse_opt string = match parse string with q -> Some q | exception Parse_error _ -> None
