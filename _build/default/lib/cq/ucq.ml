open Relational

type t = { arity : int; disjuncts : Query.t list }

let make = function
  | [] -> invalid_arg "Ucq.make: empty union"
  | first :: _ as disjuncts ->
    let arity = Query.arity first in
    List.iter
      (fun q ->
        if Query.arity q <> arity then invalid_arg "Ucq.make: head arities differ")
      disjuncts;
    { arity; disjuncts }

let of_query q = make [ q ]

let disjunct_count u = List.length u.disjuncts

let evaluate u db =
  List.sort_uniq Tuple.compare
    (List.concat_map (fun q -> Containment.evaluate q db) u.disjuncts)

let contained_query q u =
  List.exists (fun q' -> Containment.contained q q') u.disjuncts

let contained u1 u2 = List.for_all (fun q -> contained_query q u2) u1.disjuncts

let equivalent u1 u2 = contained u1 u2 && contained u2 u1

let minimize u =
  (* Keep a disjunct only if it is not contained in a different kept one;
     process in order, comparing against all others. *)
  let rec sieve kept = function
    | [] -> List.rev kept
    | q :: rest ->
      let redundant =
        List.exists (fun q' -> Containment.contained q q') rest
        || List.exists (fun q' -> Containment.contained q q') kept
      in
      if redundant then sieve kept rest else sieve (q :: kept) rest
  in
  make (List.map Containment.minimize (sieve [] u.disjuncts))

let pp ppf u =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ UNION@ ")
    Query.pp ppf u.disjuncts
