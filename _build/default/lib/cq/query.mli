open Relational

(** Conjunctive queries, written as rules

    {[ Q(X1, ..., Xn) :- P(X1, Z), R(Z, X2), ... ]}

    The head lists the distinguished variables (in order); the body is a
    conjunction of atoms over extensional predicates. *)

type atom = { pred : string; args : string array }

type t = {
  head_pred : string;  (** Name of the defined predicate, e.g. ["Q"]. *)
  head : string array;  (** Distinguished variables, in order. *)
  body : atom list;
}

val make : ?head_pred:string -> head:string list -> (string * string list) list -> t
(** [make ~head body] with body atoms as [(predicate, arguments)].
    @raise Invalid_argument if a predicate occurs with two arities or a
    predicate name collides with the reserved distinguished-variable
    prefix. *)

val arity : t -> int
(** Number of distinguished variables. *)

val variables : t -> string list
(** All variables, head first, in first-occurrence order. *)

val existential_variables : t -> string list
(** Body variables that are not distinguished. *)

val body_vocabulary : t -> Vocabulary.t
(** Predicates of the body with their arities. *)

val atom_count : t -> int

val predicate_occurrences : t -> string -> int
(** Number of body atoms using the given predicate. *)

val is_two_atom : t -> bool
(** Every predicate occurs at most twice in the body (Saraiya's class). *)

val is_safe : t -> bool
(** Every distinguished variable occurs in the body. *)

val norm : t -> int
(** Size measure [||Q||]: number of variables plus total argument count. *)

val rename_variables : (string -> string) -> t -> t
(** Apply a variable renaming verbatim to head and body.  A non-injective
    renaming yields the query with the corresponding variables
    identified. *)

val equal : t -> t -> bool
(** Syntactic equality up to atom order. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
