open Relational

let check_arities q1 q2 =
  if Query.arity q1 <> Query.arity q2 then
    invalid_arg "Containment: queries have different head arities"

let canonical_pair q1 q2 =
  let d1, index1 = Canonical.database q1 in
  let d2, index2 = Canonical.database q2 in
  ((d1, index1), (d2, index2))

let containment_witness q1 q2 =
  check_arities q1 q2;
  let (d1, index1), (d2, index2) = canonical_pair q1 q2 in
  match Homomorphism.find d2 d1 with
  | None -> None
  | Some h ->
    let name_of_element1 e =
      fst (List.find (fun (_, i) -> i = e) index1)
    in
    Some (List.map (fun (v, i) -> (v, name_of_element1 h.(i))) index2)

let contained q1 q2 =
  check_arities q1 q2;
  let (d1, _), (d2, _) = canonical_pair q1 q2 in
  Homomorphism.exists d2 d1

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

let evaluate q db =
  let body, index = Canonical.database_no_head q in
  let head_elements = Array.map (fun v -> List.assoc v index) q.Query.head in
  let answers =
    List.map
      (fun h -> Array.map (fun e -> h.(e)) head_elements)
      (Homomorphism.enumerate body db)
  in
  List.sort_uniq Tuple.compare answers

let contained_via_evaluation q1 q2 =
  check_arities q1 q2;
  let frozen, index1 = Canonical.database_no_head q1 in
  let target = Array.map (fun v -> List.assoc v index1) q1.Query.head in
  List.exists (fun t -> Tuple.equal t target) (evaluate q2 frozen)

let minimize q =
  let db, index = Canonical.database q in
  let core, retraction = Homomorphism.core_with_map db in
  (* Name each core element after one of its preimage variables, preferring
     head variables (which the retraction fixes). *)
  let representative = Array.make (Structure.size core) None in
  let record v e =
    match representative.(retraction.(e)) with
    | Some _ -> ()
    | None -> representative.(retraction.(e)) <- Some v
  in
  Array.iter (fun v -> record v (List.assoc v index)) q.Query.head;
  List.iter (fun (v, e) -> record v e) index;
  let names i =
    match representative.(i) with
    | Some v -> v
    | None -> Printf.sprintf "v%d" i
  in
  Canonical.to_query ~head_pred:q.Query.head_pred ~arity:(Query.arity q) ~names core

let contained_two_atom q1 q2 =
  check_arities q1 q2;
  if not (Query.is_two_atom q1) then
    invalid_arg "Containment.contained_two_atom: q1 is not a two-atom query";
  let (d1, _), (d2, _) = canonical_pair q1 q2 in
  (* D_{Q1} has at most two tuples per relation, so its Booleanization is
     bijunctive and the Schaefer machinery applies. *)
  match Schaefer.Booleanize.solve d2 d1 with
  | Schaefer.Booleanize.Hom _ -> true
  | Schaefer.Booleanize.No_hom -> false
  | Schaefer.Booleanize.Not_schaefer _ ->
    invalid_arg
      "Containment.contained_two_atom: Booleanized target unexpectedly not Schaefer"
