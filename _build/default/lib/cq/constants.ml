open Relational

let is_constant name = name <> "" && name.[0] >= 'a' && name.[0] <= 'z'

let constants q = List.filter is_constant (Query.variables q)

let has_constants q = constants q <> []

(* Reserved marker predicate (the "__dist" prefix keeps it unparseable in
   user queries). *)
let marker c = "__distconst_" ^ c

let with_markers (db, index) =
  let consts = List.filter (fun (v, _) -> is_constant v) index in
  let vocab =
    List.fold_left
      (fun acc (v, _) -> Vocabulary.add acc (marker v) 1)
      (Structure.vocabulary db) consts
  in
  let base = Structure.create vocab ~size:(Structure.size db) in
  let copied =
    Structure.fold_tuples (fun name t acc -> Structure.add_tuple acc name t) db base
  in
  List.fold_left
    (fun acc (v, i) -> Structure.add_tuple acc (marker v) [| i |])
    copied consts

let contained q1 q2 =
  if Query.arity q1 <> Query.arity q2 then
    invalid_arg "Constants.contained: queries have different head arities";
  let d1 = with_markers (Canonical.database q1) in
  let d2 = with_markers (Canonical.database q2) in
  Homomorphism.exists d2 d1

let equivalent q1 q2 = contained q1 q2 && contained q2 q1

(* Mark the database side: each bound constant's element carries the
   constant's marker, so homomorphisms pin constants to their bindings. *)
let mark_database q ~binding db =
  let consts = constants q in
  let vocab =
    List.fold_left
      (fun acc c -> Vocabulary.add acc (marker c) 1)
      (Structure.vocabulary db) consts
  in
  let base = Structure.create vocab ~size:(Structure.size db) in
  let copied =
    Structure.fold_tuples (fun name t acc -> Structure.add_tuple acc name t) db base
  in
  List.fold_left
    (fun acc c ->
      match List.assoc_opt c binding with
      | None -> invalid_arg ("Constants.evaluate: unbound constant " ^ c)
      | Some e ->
        if e < 0 || e >= Structure.size db then
          invalid_arg ("Constants.evaluate: constant bound outside the universe: " ^ c)
        else Structure.add_tuple acc (marker c) [| e |])
    copied consts

let evaluate q ~binding db =
  let body, index = Canonical.database_no_head q in
  let marked_body = with_markers (body, index) in
  let marked_db = mark_database q ~binding db in
  let head_elements = Array.map (fun v -> List.assoc v index) q.Query.head in
  let answers =
    List.map
      (fun h -> Array.map (fun e -> h.(e)) head_elements)
      (Homomorphism.enumerate marked_body marked_db)
  in
  List.sort_uniq Tuple.compare answers
