open Relational

type atom = { pred : string; args : string array }

type t = {
  head_pred : string;
  head : string array;
  body : atom list;
}

(* Predicate names reserved for the distinguished-variable markers of
   canonical databases. *)
let reserved_prefix = "__dist"

let make ?(head_pred = "Q") ~head body =
  let arities = Hashtbl.create 8 in
  List.iter
    (fun (pred, args) ->
      if String.length pred >= String.length reserved_prefix
         && String.sub pred 0 (String.length reserved_prefix) = reserved_prefix
      then invalid_arg ("Query.make: reserved predicate name " ^ pred);
      let arity = List.length args in
      match Hashtbl.find_opt arities pred with
      | Some a when a <> arity ->
        invalid_arg ("Query.make: predicate " ^ pred ^ " used with two arities")
      | _ -> Hashtbl.replace arities pred arity)
    body;
  {
    head_pred;
    head = Array.of_list head;
    body = List.map (fun (pred, args) -> { pred; args = Array.of_list args }) body;
  }

let arity q = Array.length q.head

let variables q =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let visit v =
    if not (Hashtbl.mem seen v) then begin
      Hashtbl.add seen v ();
      acc := v :: !acc
    end
  in
  Array.iter visit q.head;
  List.iter (fun a -> Array.iter visit a.args) q.body;
  List.rev !acc

let existential_variables q =
  let head = Array.to_list q.head in
  List.filter (fun v -> not (List.mem v head)) (variables q)

let body_vocabulary q =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun a ->
      if not (Hashtbl.mem seen a.pred) then begin
        Hashtbl.add seen a.pred ();
        acc := (a.pred, Array.length a.args) :: !acc
      end)
    q.body;
  Vocabulary.create (List.rev !acc)

let atom_count q = List.length q.body

let predicate_occurrences q pred =
  List.length (List.filter (fun a -> a.pred = pred) q.body)

let is_two_atom q =
  List.for_all
    (fun (pred, _) -> predicate_occurrences q pred <= 2)
    (Vocabulary.symbols (body_vocabulary q))

let is_safe q =
  let body_vars =
    List.concat_map (fun a -> Array.to_list a.args) q.body
  in
  Array.for_all (fun v -> List.mem v body_vars) q.head

let norm q =
  List.length (variables q)
  + List.fold_left (fun acc a -> acc + Array.length a.args) 0 q.body

let rename_variables f q =
  {
    q with
    head = Array.map f q.head;
    body = List.map (fun a -> { a with args = Array.map f a.args }) q.body;
  }

let equal q1 q2 =
  q1.head_pred = q2.head_pred
  && q1.head = q2.head
  && List.sort compare q1.body = List.sort compare q2.body

let pp_atom ppf a =
  Format.fprintf ppf "%s(%a)" a.pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    (Array.to_list a.args)

let pp ppf q =
  Format.fprintf ppf "%s(%a) :- %a." q.head_pred
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_string)
    (Array.to_list q.head)
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_atom)
    q.body

let to_string q = Format.asprintf "%a" pp q
