open Relational

type tgd = { body : Query.atom list; head : Query.atom list }

exception Diverged

let tgd ~body ~head =
  if body = [] || head = [] then invalid_arg "Chase.tgd: empty body or head";
  (* Reuse Query.make's arity bookkeeping across body and head together. *)
  let q = Query.make ~head:[] (body @ head) in
  let atoms = q.Query.body in
  let rec split n = function
    | rest when n = 0 -> ([], rest)
    | [] -> ([], [])
    | a :: rest ->
      let b, h = split (n - 1) rest in
      (a :: b, h)
  in
  let b, h = split (List.length body) atoms in
  { body = b; head = h }

let atom_vars atoms =
  let seen = Hashtbl.create 8 in
  List.concat_map (fun (a : Query.atom) -> Array.to_list a.Query.args) atoms
  |> List.filter (fun v ->
         if Hashtbl.mem seen v then false
         else begin
           Hashtbl.add seen v ();
           true
         end)

let frontier t =
  let head_vars = atom_vars t.head in
  List.filter (fun v -> List.mem v head_vars) (atom_vars t.body)

let existentials t =
  let body_vars = atom_vars t.body in
  List.filter (fun v -> not (List.mem v body_vars)) (atom_vars t.head)

(* Weak acyclicity: build the position graph and reject special edges
   inside cycles. *)
let is_weakly_acyclic tgds =
  let positions = Hashtbl.create 32 in
  let id_of key =
    match Hashtbl.find_opt positions key with
    | Some i -> i
    | None ->
      let i = Hashtbl.length positions in
      Hashtbl.replace positions key i;
      i
  in
  let normal = ref [] and special = ref [] in
  List.iter
    (fun t ->
      let fr = frontier t and ex = existentials t in
      let body_positions_of v =
        List.concat_map
          (fun (a : Query.atom) ->
            List.filteri (fun _ _ -> true)
              (Array.to_list (Array.mapi (fun i w -> (i, w)) a.Query.args))
            |> List.filter_map (fun (i, w) ->
                   if w = v then Some (id_of (a.Query.pred, i)) else None))
          t.body
      in
      List.iter
        (fun (a : Query.atom) ->
          Array.iteri
            (fun j w ->
              let target = id_of (a.Query.pred, j) in
              if List.mem w fr then
                List.iter (fun src -> normal := (src, target) :: !normal)
                  (body_positions_of w)
              else if List.mem w ex then
                List.iter
                  (fun v ->
                    List.iter
                      (fun src -> special := (src, target) :: !special)
                      (body_positions_of v))
                  fr)
            a.Query.args)
        t.head)
    tgds;
  let n = Hashtbl.length positions in
  (* SCCs by iterative DFS on the combined graph; a special edge inside one
     SCC witnesses non-termination risk. *)
  let adj = Array.make (max n 1) [] in
  List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) (!normal @ !special);
  (* Kosaraju. *)
  let visited = Array.make (max n 1) false in
  let order = ref [] in
  let rec dfs1 u =
    visited.(u) <- true;
    List.iter (fun v -> if not visited.(v) then dfs1 v) adj.(u);
    order := u :: !order
  in
  for u = 0 to n - 1 do
    if not visited.(u) then dfs1 u
  done;
  let radj = Array.make (max n 1) [] in
  List.iter (fun (u, v) -> radj.(v) <- u :: radj.(v)) (!normal @ !special);
  let comp = Array.make (max n 1) (-1) in
  let c = ref 0 in
  let rec dfs2 u =
    comp.(u) <- !c;
    List.iter (fun v -> if comp.(v) < 0 then dfs2 v) radj.(u)
  in
  List.iter
    (fun u ->
      if comp.(u) < 0 then begin
        dfs2 u;
        incr c
      end)
    !order;
  List.for_all (fun (u, v) -> comp.(u) <> comp.(v)) !special

let raw_atoms atoms =
  List.map
    (fun (a : Query.atom) -> (a.Query.pred, Array.to_list a.Query.args))
    atoms

(* Structures for a TGD: the body alone, and body+head with the same
   variable indexing. *)
let tgd_structures t =
  let body_query = Query.make ~head:[] (raw_atoms t.body) in
  let full_query = Query.make ~head:[] (raw_atoms (t.body @ t.head)) in
  let body_db, body_index = Canonical.database_no_head body_query in
  let full_db, full_index = Canonical.database_no_head full_query in
  (body_db, body_index, full_db, full_index)

(* Extend a structure with extra universe elements and the head's facts. *)
let apply_trigger db t ~assignment =
  (* assignment: variable -> element of db for body variables. *)
  let ex = existentials t in
  let fresh_base = Structure.size db in
  let fresh = List.mapi (fun i v -> (v, fresh_base + i)) ex in
  let value v =
    match List.assoc_opt v assignment with
    | Some e -> e
    | None -> List.assoc v fresh
  in
  let vocab =
    List.fold_left
      (fun acc (a : Query.atom) ->
        if Vocabulary.mem acc a.Query.pred then acc
        else Vocabulary.add acc a.Query.pred (Array.length a.Query.args))
      (Structure.vocabulary db) t.head
  in
  let grown =
    Structure.fold_tuples
      (fun name tu acc -> Structure.add_tuple acc name tu)
      db
      (Structure.create vocab ~size:(fresh_base + List.length ex))
  in
  List.fold_left
    (fun acc (a : Query.atom) ->
      Structure.add_tuple acc a.Query.pred (Array.map value a.Query.args))
    grown t.head

let chase ?(max_steps = 1000) tgds db =
  let steps = ref 0 in
  let current = ref db in
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun t ->
        let body_db, body_index, full_db, full_index = tgd_structures t in
        (* All body matches in the current database. *)
        let matches = Homomorphism.enumerate body_db !current in
        List.iter
          (fun h ->
            let assignment =
              List.map (fun (v, i) -> (v, h.(i))) body_index
            in
            (* Restricted chase: fire only if no head extension exists. *)
            let restrict x value =
              match
                List.find_opt (fun (v, _) -> List.assoc v full_index = x) assignment
              with
              | Some (_, e) -> value = e
              | None -> true
            in
            let satisfied =
              Homomorphism.find ~restrict full_db !current <> None
            in
            if not satisfied then begin
              incr steps;
              if !steps > max_steps then raise Diverged;
              current := apply_trigger !current t ~assignment;
              progress := true
            end)
          matches)
      tgds
  done;
  !current

let contained_under ?max_steps tgds q1 q2 =
  if Query.arity q1 <> Query.arity q2 then
    invalid_arg "Chase.contained_under: queries have different head arities";
  let d1, index1 = Canonical.database_no_head q1 in
  let chased = chase ?max_steps tgds d1 in
  (* Check the frozen head tuple of Q1 against Q2 over the chased database:
     homomorphism from Q2's body pinning head variables positionally. *)
  let body2, index2 = Canonical.database_no_head q2 in
  let head1 = Array.map (fun v -> List.assoc v index1) q1.Query.head in
  let head2 = Array.map (fun v -> List.assoc v index2) q2.Query.head in
  let pinned =
    Array.to_list (Array.map2 (fun e2 e1 -> (e2, e1)) head2 head1)
  in
  let restrict x value =
    List.for_all (fun (e2, e1) -> e2 <> x || value = e1) pinned
  in
  Homomorphism.find ~restrict body2 chased <> None
