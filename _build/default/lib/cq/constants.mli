open Relational

(** Conjunctive queries with constants, Prolog-style: identifiers starting
    with a lowercase letter are constants, all others are variables.

    Constants refine the Chandra–Merlin test: the canonical databases carry
    a reserved unary marker per constant, so homomorphisms must send each
    constant to itself (unique-names assumption). *)

val is_constant : string -> bool

val constants : Query.t -> string list
(** Distinct constants, in first-occurrence order. *)

val has_constants : Query.t -> bool

val contained : Query.t -> Query.t -> bool
(** [Q1 ⊆ Q2] under the constants reading.
    @raise Invalid_argument when head arities differ. *)

val equivalent : Query.t -> Query.t -> bool

val evaluate : Query.t -> binding:(string * int) list -> Structure.t -> Tuple.t list
(** Evaluate with each constant bound to a database element.
    @raise Invalid_argument if a constant of the query is unbound or bound
    outside the universe. *)
