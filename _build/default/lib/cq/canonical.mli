open Relational

(** Canonical databases of conjunctive queries and canonical queries of
    structures (Section 2 of the paper).

    The canonical database [D_Q] has one element per variable of [Q], one
    fact per body atom and, for the [i]-th distinguished variable, a fact in
    a reserved unary marker predicate [__dist<i>].  Chandra–Merlin:
    [Q1 ⊆ Q2] iff there is a homomorphism [D_{Q2} -> D_{Q1}]. *)

val dist_pred : int -> string
(** Marker predicate for the [i]-th head position. *)

val database : Query.t -> Structure.t * (string * int) list
(** [D_Q] with distinguished-variable markers, and the variable-to-element
    mapping. *)

val database_no_head : Query.t -> Structure.t * (string * int) list
(** The frozen body only (no marker predicates) — the database to evaluate
    other queries over. *)

val boolean_query : Structure.t -> Query.t
(** [Q_A]: the Boolean conjunctive query whose body lists the facts of [A],
    with every element viewed as an existential variable [v<i>].  There is a
    homomorphism [A -> B] iff [Q_B ⊆ Q_A]. *)

val to_query : ?head_pred:string -> arity:int -> names:(int -> string) -> Structure.t -> Query.t
(** Rebuild a query from a marker-carrying canonical database (the inverse of
    {!database}, used after taking cores).  The [i]-th head variable is the
    element carrying the [__dist<i>] fact.
    @raise Invalid_argument if some marker is missing or duplicated. *)
