open Relational

type expr =
  | Relation of string * string array
  | Select of string * string * expr
  | Project of string list * expr
  | Join of expr * expr
  | Rename of (string * string) list * expr

type table = { columns : string array; rows : Tuple.t list }

let column_position t name =
  let found = ref (-1) in
  Array.iteri (fun i c -> if c = name && !found < 0 then found := i) t.columns;
  if !found < 0 then invalid_arg ("Algebra: unknown column " ^ name) else !found

let dedupe rows = List.sort_uniq Tuple.compare rows

let rec eval db expr =
  match expr with
  | Relation (name, cols) -> (
    match Structure.relation db name with
    | rel ->
      if Relation.arity rel <> Array.length cols then
        invalid_arg ("Algebra: arity mismatch scanning " ^ name);
      { columns = Array.copy cols; rows = Relation.elements rel }
    | exception Not_found ->
      (* Unknown relations read as empty, matching query evaluation. *)
      { columns = Array.copy cols; rows = [] })
  | Select (c1, c2, e) ->
    let t = eval db e in
    let i = column_position t c1 and j = column_position t c2 in
    { t with rows = List.filter (fun row -> row.(i) = row.(j)) t.rows }
  | Project (cols, e) ->
    let t = eval db e in
    let positions = List.map (column_position t) cols in
    {
      columns = Array.of_list cols;
      rows =
        dedupe
          (List.map
             (fun row -> Array.of_list (List.map (fun i -> row.(i)) positions))
             t.rows);
    }
  | Rename (pairs, e) ->
    let t = eval db e in
    let renamed =
      Array.map
        (fun c -> match List.assoc_opt c pairs with Some c' -> c' | None -> c)
        t.columns
    in
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun c ->
        if Hashtbl.mem seen c then invalid_arg ("Algebra: rename collision on " ^ c);
        Hashtbl.add seen c ())
      renamed;
    { t with columns = renamed }
  | Join (e1, e2) ->
    let t1 = eval db e1 and t2 = eval db e2 in
    let shared =
      Array.to_list t1.columns
      |> List.filter (fun c -> Array.exists (( = ) c) t2.columns)
    in
    let pos1 = List.map (column_position t1) shared in
    let pos2 = List.map (column_position t2) shared in
    let extra =
      Array.to_list t2.columns
      |> List.mapi (fun i c -> (i, c))
      |> List.filter (fun (_, c) -> not (Array.exists (( = ) c) t1.columns))
    in
    let index = Hashtbl.create (List.length t2.rows) in
    List.iter
      (fun row ->
        let key = Array.of_list (List.map (fun i -> row.(i)) pos2) in
        Hashtbl.add index key row)
      t2.rows;
    let rows =
      List.concat_map
        (fun row1 ->
          let key = Array.of_list (List.map (fun i -> row1.(i)) pos1) in
          List.map
            (fun row2 ->
              Array.append row1
                (Array.of_list (List.map (fun (i, _) -> row2.(i)) extra)))
            (Hashtbl.find_all index key))
        t1.rows
    in
    {
      columns = Array.append t1.columns (Array.of_list (List.map snd extra));
      rows = dedupe rows;
    }

let plan_of_query q =
  if not (Query.is_safe q) then
    invalid_arg "Algebra.plan_of_query: unsafe query (head variable not in body)";
  let atom_plan i (a : Query.atom) =
    let fresh = Array.mapi (fun p _ -> Printf.sprintf "c%d_%d" i p) a.Query.args in
    let base = Relation (a.Query.pred, fresh) in
    (* Select for repeated variables inside the atom. *)
    let selected =
      snd
        (Array.fold_left
           (fun (p, acc) v ->
             let first = ref (-1) in
             Array.iteri (fun j w -> if w = v && !first < 0 then first := j) a.Query.args;
             if !first < p then (p + 1, Select (fresh.(!first), fresh.(p), acc))
             else (p + 1, acc))
           (0, base) a.Query.args)
    in
    (* Keep the first occurrence of each variable, named by the variable. *)
    let firsts =
      List.filteri
        (fun p _ ->
          let v = a.Query.args.(p) in
          let first = ref (-1) in
          Array.iteri (fun j w -> if w = v && !first < 0 then first := j) a.Query.args;
          !first = p)
        (Array.to_list fresh)
    in
    let vars_of_firsts =
      List.filter_map
        (fun c ->
          let p = ref (-1) in
          Array.iteri (fun j f -> if f = c then p := j) fresh;
          Some (c, a.Query.args.(!p)))
        firsts
    in
    Rename (vars_of_firsts, Project (firsts, selected))
  in
  let joined =
    match List.mapi atom_plan q.Query.body with
    | [] -> invalid_arg "Algebra.plan_of_query: empty body"
    | first :: rest -> List.fold_left (fun acc p -> Join (acc, p)) first rest
  in
  Project (Array.to_list q.Query.head, joined)

let evaluate_query q db =
  let t = eval db (plan_of_query q) in
  List.sort_uniq Tuple.compare t.rows

let rec pp ppf = function
  | Relation (name, cols) ->
    Format.fprintf ppf "%s(%a)" name
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_string)
      (Array.to_list cols)
  | Select (c1, c2, e) -> Format.fprintf ppf "select[%s=%s](%a)" c1 c2 pp e
  | Project (cols, e) ->
    Format.fprintf ppf "project[%s](%a)" (String.concat ", " cols) pp e
  | Join (e1, e2) -> Format.fprintf ppf "(%a join %a)" pp e1 pp e2
  | Rename (pairs, e) ->
    Format.fprintf ppf "rename[%s](%a)"
      (String.concat ", " (List.map (fun (o, n) -> o ^ "->" ^ n) pairs))
      pp e
