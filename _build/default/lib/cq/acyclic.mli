open Relational

(** Yannakakis evaluation for acyclic conjunctive queries (the querywidth-1
    case of Section 5, after Yannakakis 1981).

    For a query whose body hypergraph passes the GYO test, the answer
    relation is computed by joining along a join forest with early
    projection: intermediate tables only keep the columns needed upward
    (connecting variables) plus the distinguished variables — the classical
    output-sensitive polynomial algorithm, in contrast to enumerating all
    homomorphisms. *)

val is_acyclic : Query.t -> bool

val evaluate : Query.t -> Structure.t -> Tuple.t list
(** Sorted answer tuples. @raise Invalid_argument if the query body is
    cyclic (use {!Containment.evaluate} there). *)
