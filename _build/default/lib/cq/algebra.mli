open Relational

(** Select–Project–Join relational algebra.

    The paper's opening observation is that conjunctive queries have
    exactly the expressive power of SPJ algebra.  This module makes the
    equivalence executable: an algebra over named columns, a compiler from
    conjunctive queries to left-deep SPJ plans, and an evaluator whose
    results coincide with the homomorphism-based semantics. *)

type expr =
  | Relation of string * string array
      (** Base relation scan with column names for its positions. *)
  | Select of string * string * expr  (** Equality selection col = col. *)
  | Project of string list * expr  (** Keep the named columns, in order. *)
  | Join of expr * expr  (** Natural join on shared column names. *)
  | Rename of (string * string) list * expr  (** old/new column pairs. *)

type table = { columns : string array; rows : Tuple.t list }

val eval : Structure.t -> expr -> table
(** @raise Invalid_argument on unknown columns, arity mismatches or
    colliding names in a rename. *)

val plan_of_query : Query.t -> expr
(** Left-deep SPJ plan: scan each atom (renaming positions apart and
    selecting for repeated variables), join them naturally, and project to
    the head.
    @raise Invalid_argument if the query is unsafe (a head variable missing
    from the body) — SPJ plans cannot invent values. *)

val evaluate_query : Query.t -> Structure.t -> Tuple.t list
(** [eval] of [plan_of_query]; agrees with
    {!Containment.evaluate} on safe queries. *)

val pp : Format.formatter -> expr -> unit
