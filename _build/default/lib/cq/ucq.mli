open Relational

(** Unions of conjunctive queries.

    Containment of UCQs reduces to containment of conjunctive queries by
    the Sagiv–Yannakakis criterion: [U1 ⊆ U2] iff every disjunct of [U1] is
    contained in {e some} disjunct of [U2].  This extends the paper's
    machinery from Select-Project-Join queries to SPJU queries. *)

type t = private { arity : int; disjuncts : Query.t list }

val make : Query.t list -> t
(** @raise Invalid_argument on an empty list or mismatched head arities. *)

val of_query : Query.t -> t

val disjunct_count : t -> int

val evaluate : t -> Structure.t -> Tuple.t list
(** Union of the disjuncts' answers, sorted. *)

val contained_query : Query.t -> t -> bool
(** [q ⊆ U]: some disjunct contains [q]. *)

val contained : t -> t -> bool
(** Sagiv–Yannakakis. *)

val equivalent : t -> t -> bool

val minimize : t -> t
(** Remove disjuncts contained in other disjuncts, then minimize each
    surviving disjunct; the result is equivalent with a minimal set of
    minimal disjuncts. *)

val pp : Format.formatter -> t -> unit
