lib/cq/parser.mli: Query
