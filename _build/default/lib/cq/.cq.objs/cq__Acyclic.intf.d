lib/cq/acyclic.mli: Query Relational Structure Tuple
