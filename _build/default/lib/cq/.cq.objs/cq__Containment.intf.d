lib/cq/containment.mli: Query Relational Structure Tuple
