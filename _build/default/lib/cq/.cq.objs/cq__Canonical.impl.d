lib/cq/canonical.ml: Array Fun List Printf Query Relation Relational String Structure Vocabulary
