lib/cq/query.ml: Array Format Hashtbl List Relational String Vocabulary
