lib/cq/acyclic.ml: Array Canonical Fun Hashtbl Int List Query Relation Relational Structure Treewidth Tuple
