lib/cq/constants.mli: Query Relational Structure Tuple
