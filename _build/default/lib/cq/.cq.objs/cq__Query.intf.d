lib/cq/query.mli: Format Relational Vocabulary
