lib/cq/chase.mli: Query Relational Structure
