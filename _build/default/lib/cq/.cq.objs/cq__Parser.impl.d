lib/cq/parser.ml: List Printf Query String
