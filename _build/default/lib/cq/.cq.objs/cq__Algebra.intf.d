lib/cq/algebra.mli: Format Query Relational Structure Tuple
