lib/cq/ucq.mli: Format Query Relational Structure Tuple
