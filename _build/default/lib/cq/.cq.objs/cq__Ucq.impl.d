lib/cq/ucq.ml: Containment Format List Query Relational Tuple
