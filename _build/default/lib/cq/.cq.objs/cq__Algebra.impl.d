lib/cq/algebra.ml: Array Format Hashtbl List Printf Query Relation Relational String Structure Tuple
