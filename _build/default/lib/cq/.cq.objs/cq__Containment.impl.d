lib/cq/containment.ml: Array Canonical Homomorphism List Printf Query Relational Schaefer Structure Tuple
