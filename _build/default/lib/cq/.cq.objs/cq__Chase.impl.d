lib/cq/chase.ml: Array Canonical Hashtbl Homomorphism List Query Relational Structure Vocabulary
