lib/cq/canonical.mli: Query Relational Structure
