lib/cq/constants.ml: Array Canonical Homomorphism List Query Relational String Structure Tuple Vocabulary
