open Relational

module Iset = Set.Make (Int)

type t = { arity : int; masks : Iset.t }

let check_arity arity =
  if arity < 0 || arity > 60 then invalid_arg "Boolean_relation: arity outside 0..60"

let create arity masks =
  check_arity arity;
  let limit = 1 lsl arity in
  List.iter
    (fun m ->
      if m < 0 || m >= limit then
        invalid_arg "Boolean_relation.create: mask outside arity range")
    masks;
  { arity; masks = Iset.of_list masks }

let full arity =
  check_arity arity;
  { arity; masks = Iset.of_list (List.init (1 lsl arity) Fun.id) }

let arity r = r.arity

let cardinal r = Iset.cardinal r.masks

let is_empty r = Iset.is_empty r.masks

let mem r m = Iset.mem m r.masks

let masks r = Iset.elements r.masks

let mask_of_tuple t =
  if Array.length t > 60 then invalid_arg "Boolean_relation.mask_of_tuple: arity > 60";
  Array.to_list t
  |> List.mapi (fun i b ->
         match b with
         | 0 -> 0
         | 1 -> 1 lsl i
         | _ -> invalid_arg "Boolean_relation.mask_of_tuple: entry not 0/1")
  |> List.fold_left ( lor ) 0

let tuple_of_mask arity mask = Array.init arity (fun i -> (mask lsr i) land 1)

let tuples r = List.map (tuple_of_mask r.arity) (masks r)

let of_relation rel =
  create (Relation.arity rel)
    (Relation.fold (fun t acc -> mask_of_tuple t :: acc) rel [])

let to_relation r = Relation.of_list r.arity (tuples r)

let equal r s = r.arity = s.arity && Iset.equal r.masks s.masks

let fold f r init = Iset.fold f r.masks init

let tuple_and = ( land )

let tuple_or = ( lor )

let tuple_xor3 a b c = a lxor b lxor c

let tuple_majority a b c = (a land b) lor (b land c) lor (a land c)

let closed_under2 r op =
  Iset.for_all (fun a -> Iset.for_all (fun b -> Iset.mem (op a b) r.masks) r.masks) r.masks

let closed_under3 r op =
  Iset.for_all
    (fun a ->
      Iset.for_all
        (fun b -> Iset.for_all (fun c -> Iset.mem (op a b c) r.masks) r.masks)
        r.masks)
    r.masks

let ones arity mask =
  List.filter (fun i -> (mask lsr i) land 1 = 1) (List.init arity Fun.id)

let complement_tuples r =
  let all = (1 lsl r.arity) - 1 in
  { r with masks = Iset.map (fun m -> all land lnot m) r.masks }

let pp ppf r =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf m -> Tuple.pp ppf (tuple_of_mask r.arity m)))
    (masks r)
