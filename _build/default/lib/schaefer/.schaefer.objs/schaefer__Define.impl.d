lib/schaefer/define.ml: Array Boolean_relation Classify Cnf Gf2 Hashtbl List Printf
