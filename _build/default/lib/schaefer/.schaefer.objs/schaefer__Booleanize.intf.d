lib/schaefer/booleanize.mli: Homomorphism Relational Structure
