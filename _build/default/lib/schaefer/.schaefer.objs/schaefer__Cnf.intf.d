lib/schaefer/cnf.mli: Format
