lib/schaefer/boolean_relation.mli: Format Relation Relational Tuple
