lib/schaefer/cnf.ml: Array Format List
