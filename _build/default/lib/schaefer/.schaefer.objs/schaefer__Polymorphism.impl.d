lib/schaefer/polymorphism.ml: Array Boolean_relation Classify Fun List Printf
