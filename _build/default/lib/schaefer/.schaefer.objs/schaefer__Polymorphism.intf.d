lib/schaefer/polymorphism.mli: Boolean_relation Classify Relational
