lib/schaefer/gf2.mli: Format
