lib/schaefer/gf2.ml: Array Format Fun List
