lib/schaefer/two_sat.mli: Cnf
