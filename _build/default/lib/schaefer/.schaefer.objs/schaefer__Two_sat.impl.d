lib/schaefer/two_sat.ml: Array Cnf List Queue Stack
