lib/schaefer/horn_sat.ml: Array Cnf Int List Queue
