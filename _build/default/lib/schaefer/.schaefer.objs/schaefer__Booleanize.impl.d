lib/schaefer/booleanize.ml: Array Homomorphism List Relational Structure Uniform Vocabulary
