lib/schaefer/define.mli: Boolean_relation Classify Cnf Gf2
