lib/schaefer/classify.mli: Boolean_relation Format Relational Structure
