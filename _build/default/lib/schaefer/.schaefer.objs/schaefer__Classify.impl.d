lib/schaefer/classify.ml: Boolean_relation Format List Relational Structure Vocabulary
