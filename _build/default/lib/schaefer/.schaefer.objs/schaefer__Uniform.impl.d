lib/schaefer/uniform.ml: Array Boolean_relation Classify Cnf Define Gf2 Hashtbl Homomorphism Horn_sat Int List Queue Relation Relational Stack Structure Tuple Two_sat Vocabulary
