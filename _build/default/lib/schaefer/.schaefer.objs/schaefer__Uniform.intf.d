lib/schaefer/uniform.mli: Classify Define Homomorphism Relational Structure
