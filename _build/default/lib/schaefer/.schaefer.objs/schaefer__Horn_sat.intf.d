lib/schaefer/horn_sat.mli: Cnf
