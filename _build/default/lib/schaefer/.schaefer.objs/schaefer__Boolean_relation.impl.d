lib/schaefer/boolean_relation.ml: Array Format Fun Int List Relation Relational Set Tuple
