type t =
  | Clausal of Cnf.t
  | Linear of Gf2.system

let require relation cls =
  if not (Classify.relation_in_class relation cls) then
    invalid_arg
      (Printf.sprintf "Define: relation is not %s" (Classify.class_name cls))

(* Horn construction.  Since R is AND-closed, its one-sets form a closure
   system whose closed sets are exactly {One(t) | t in R}.  The formula
   consists of:
   - unit clauses for the ones of the minimum model (AND of all tuples);
   - for every closed set C and every j outside C, with X = C + j:
     either a negative clause excluding X (no model contains X), or
     implications X -> j' for every j' forced by X.
   Every clause is valid on R, and a standard maximal-closed-subset argument
   shows every non-model violates one of them. *)
let horn_formula relation =
  require relation Classify.Horn;
  let k = Boolean_relation.arity relation in
  let masks = Boolean_relation.masks relation in
  match masks with
  | [] -> Cnf.make ~nvars:(max k 1) [ [] ]
  | first :: rest ->
    let minimum = List.fold_left ( land ) first rest in
    let closure x =
      let above = List.filter (fun t -> t land x = x) masks in
      match above with
      | [] -> None
      | t :: ts -> Some (List.fold_left ( land ) t ts)
    in
    let neg_clause x = List.map Cnf.neg (Boolean_relation.ones k x) in
    let clauses = Hashtbl.create 64 in
    let emit c =
      let key = List.sort compare (List.map (fun l -> (l.Cnf.var, l.Cnf.sign)) c) in
      if not (Hashtbl.mem clauses key) then Hashtbl.add clauses key c
    in
    List.iter (fun j -> emit [ Cnf.pos j ]) (Boolean_relation.ones k minimum);
    List.iter
      (fun c ->
        for j = 0 to k - 1 do
          if (c lsr j) land 1 = 0 then begin
            let x = c lor (1 lsl j) in
            match closure x with
            | None -> emit (neg_clause x)
            | Some y ->
              List.iter
                (fun j' -> emit (neg_clause x @ [ Cnf.pos j' ]))
                (Boolean_relation.ones k (y land lnot x))
          end
        done)
      masks;
    Cnf.make ~nvars:k (Hashtbl.fold (fun _ c acc -> c :: acc) clauses [])

let dual_horn_formula relation =
  require relation Classify.Dual_horn;
  Cnf.flip_signs (horn_formula (Boolean_relation.complement_tuples relation))

let bijunctive_formula relation =
  require relation Classify.Bijunctive;
  let k = Boolean_relation.arity relation in
  let masks = Boolean_relation.masks relation in
  let satisfied clause =
    List.for_all
      (fun m ->
        List.exists
          (fun l -> (m lsr l.Cnf.var) land 1 = if l.Cnf.sign then 1 else 0)
          clause)
      masks
  in
  let clauses = ref [] in
  let consider c = if satisfied c then clauses := c :: !clauses in
  if k = 0 then begin
    if masks = [] then clauses := [ [] ]
  end
  else begin
    for i = 0 to k - 1 do
      consider [ Cnf.pos i ];
      consider [ Cnf.neg i ];
      for j = i + 1 to k - 1 do
        consider [ Cnf.pos i; Cnf.pos j ];
        consider [ Cnf.pos i; Cnf.neg j ];
        consider [ Cnf.neg i; Cnf.pos j ];
        consider [ Cnf.neg i; Cnf.neg j ]
      done
    done
  end;
  Cnf.make ~nvars:(max k 1) !clauses

let affine_system relation =
  require relation Classify.Affine;
  let k = Boolean_relation.arity relation in
  let rows =
    List.map
      (fun m -> Array.init (k + 1) (fun i -> if i = k then true else (m lsr i) land 1 = 1))
      (Boolean_relation.masks relation)
  in
  let basis = Gf2.nullspace_basis ~ncols:(k + 1) rows in
  let equations =
    List.map
      (fun v -> { Gf2.coeffs = Array.sub v 0 k; rhs = v.(k) })
      basis
  in
  Gf2.make_system ~nvars:k equations

let defining relation = function
  | Classify.Horn -> Clausal (horn_formula relation)
  | Classify.Dual_horn -> Clausal (dual_horn_formula relation)
  | Classify.Bijunctive -> Clausal (bijunctive_formula relation)
  | Classify.Affine -> Linear (affine_system relation)
  | (Classify.Zero_valid | Classify.One_valid) as cls ->
    invalid_arg
      (Printf.sprintf "Define.defining: trivial class %s needs no formula"
         (Classify.class_name cls))

let size = function
  | Clausal f -> Cnf.size f
  | Linear s -> Gf2.size s
