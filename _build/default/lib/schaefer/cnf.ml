type literal = { var : int; sign : bool }

type clause = literal list

type t = { nvars : int; clauses : clause list }

let pos var = { var; sign = true }

let neg var = { var; sign = false }

let negate l = { l with sign = not l.sign }

let make ~nvars clauses =
  List.iter
    (List.iter (fun l ->
         if l.var < 0 || l.var >= nvars then
           invalid_arg "Cnf.make: variable out of range"))
    clauses;
  { nvars; clauses }

let size f = List.fold_left (fun acc c -> acc + List.length c) 0 f.clauses

let clause_count f = List.length f.clauses

let count_sign sign c = List.length (List.filter (fun l -> l.sign = sign) c)

let is_horn f = List.for_all (fun c -> count_sign true c <= 1) f.clauses

let is_dual_horn f = List.for_all (fun c -> count_sign false c <= 1) f.clauses

let is_two_cnf f = List.for_all (fun c -> List.length c <= 2) f.clauses

let eval_literal assignment l = if l.sign then assignment.(l.var) else not assignment.(l.var)

let eval_clause assignment c = List.exists (eval_literal assignment) c

let satisfies assignment f = List.for_all (eval_clause assignment) f.clauses

let models f =
  if f.nvars > 22 then invalid_arg "Cnf.models: too many variables";
  let acc = ref [] in
  for mask = (1 lsl f.nvars) - 1 downto 0 do
    let assignment = Array.init f.nvars (fun i -> (mask lsr i) land 1 = 1) in
    if satisfies assignment f then acc := assignment :: !acc
  done;
  !acc

let map_vars ~nvars subst f =
  make ~nvars
    (List.map (List.map (fun l -> { l with var = subst l.var })) f.clauses)

let conjoin = function
  | [] -> { nvars = 0; clauses = [] }
  | first :: rest ->
    List.iter
      (fun f ->
        if f.nvars <> first.nvars then invalid_arg "Cnf.conjoin: variable count mismatch")
      rest;
    { first with clauses = List.concat_map (fun f -> f.clauses) (first :: rest) }

let flip_signs f = { f with clauses = List.map (List.map negate) f.clauses }

let pp_literal ppf l =
  Format.fprintf ppf "%sp%d" (if l.sign then "" else "~") l.var

let pp ppf f =
  if f.clauses = [] then Format.pp_print_string ppf "true"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
      (fun ppf c ->
        Format.fprintf ppf "(%a)"
          (Format.pp_print_list
             ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
             pp_literal)
          c)
      ppf f.clauses
