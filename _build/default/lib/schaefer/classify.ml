open Relational

type schaefer_class =
  | Zero_valid
  | One_valid
  | Horn
  | Dual_horn
  | Bijunctive
  | Affine

let all_classes = [ Zero_valid; One_valid; Horn; Dual_horn; Bijunctive; Affine ]

let class_name = function
  | Zero_valid -> "0-valid"
  | One_valid -> "1-valid"
  | Horn -> "Horn"
  | Dual_horn -> "dual Horn"
  | Bijunctive -> "bijunctive"
  | Affine -> "affine"

let pp_class ppf c = Format.pp_print_string ppf (class_name c)

let relation_in_class r = function
  | Zero_valid -> Boolean_relation.mem r 0
  | One_valid -> Boolean_relation.mem r ((1 lsl Boolean_relation.arity r) - 1)
  | Horn -> Boolean_relation.closed_under2 r Boolean_relation.tuple_and
  | Dual_horn -> Boolean_relation.closed_under2 r Boolean_relation.tuple_or
  | Bijunctive -> Boolean_relation.closed_under3 r Boolean_relation.tuple_majority
  | Affine -> Boolean_relation.closed_under3 r Boolean_relation.tuple_xor3

let relation_classes r = List.filter (relation_in_class r) all_classes

let is_boolean_structure b = Structure.size b = 2

let boolean_relations b =
  if not (is_boolean_structure b) then
    invalid_arg "Classify: structure is not Boolean (universe size <> 2)";
  List.map
    (fun (name, _) -> (name, Boolean_relation.of_relation (Structure.relation b name)))
    (Vocabulary.symbols (Structure.vocabulary b))

let structure_classes b =
  let rels = boolean_relations b in
  List.filter (fun c -> List.for_all (fun (_, r) -> relation_in_class r c) rels) all_classes

let is_schaefer b = structure_classes b <> []

let is_trivial b =
  List.exists (fun c -> c = Zero_valid || c = One_valid) (structure_classes b)

let classify b =
  let classes = structure_classes b in
  let preference = [ Zero_valid; One_valid; Bijunctive; Horn; Dual_horn; Affine ] in
  List.find_opt (fun c -> List.mem c classes) preference
