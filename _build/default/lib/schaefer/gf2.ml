type equation = { coeffs : bool array; rhs : bool }

type system = { nvars : int; equations : equation list }

let make_system ~nvars equations =
  List.iter
    (fun e ->
      if Array.length e.coeffs <> nvars then
        invalid_arg "Gf2.make_system: coefficient length mismatch")
    equations;
  { nvars; equations }

let satisfies assignment s =
  List.for_all
    (fun e ->
      let sum = ref false in
      Array.iteri (fun i c -> if c && assignment.(i) then sum := not !sum) e.coeffs;
      !sum = e.rhs)
    s.equations

(* Gaussian elimination on augmented rows; returns the echelon rows and the
   pivot column of each (the augmented column is [ncols]). *)
let eliminate ~width rows =
  let rows = List.map Array.copy rows in
  let echelon = ref [] in
  let remaining = ref (List.filter (fun row -> Array.exists Fun.id row) rows) in
  let col = ref 0 in
  while !remaining <> [] && !col < width do
    let c = !col in
    match List.partition (fun row -> row.(c)) !remaining with
    | [], _ -> incr col
    | pivot :: others_with_bit, rest ->
      let reduce row =
        if row.(c) then Array.iteri (fun i v -> row.(i) <- row.(i) <> v) pivot
      in
      List.iter reduce others_with_bit;
      List.iter reduce rest;
      echelon := (c, pivot) :: !echelon;
      remaining := others_with_bit @ rest;
      remaining := List.filter (fun row -> Array.exists Fun.id row) !remaining;
      incr col
  done;
  (List.rev !echelon, !remaining)

let solve s =
  let rows =
    List.map
      (fun e -> Array.append e.coeffs [| e.rhs |])
      s.equations
  in
  let echelon, _leftover = eliminate ~width:(s.nvars + 1) rows in
  (* Rows left over after elimination are all zero; inconsistency shows up
     only as a pivot in the augmented column. *)
  if List.exists (fun (c, _) -> c = s.nvars) echelon then None
  else begin
    let assignment = Array.make s.nvars false in
    (* Back-substitute in decreasing pivot order; free variables stay 0. *)
    List.iter
      (fun (c, row) ->
        let sum = ref row.(s.nvars) in
        for i = c + 1 to s.nvars - 1 do
          if row.(i) && assignment.(i) then sum := not !sum
        done;
        assignment.(c) <- !sum)
      (List.rev echelon);
    Some assignment
  end

let rank rows =
  match rows with
  | [] -> 0
  | first :: _ ->
    let echelon, _ = eliminate ~width:(Array.length first) rows in
    List.length echelon

let nullspace_basis ~ncols rows =
  let echelon, _ = eliminate ~width:ncols rows in
  let pivot_cols = List.map fst echelon in
  let is_pivot c = List.mem c pivot_cols in
  let free_cols = List.filter (fun c -> not (is_pivot c)) (List.init ncols Fun.id) in
  List.map
    (fun f ->
      let v = Array.make ncols false in
      v.(f) <- true;
      (* Solve M v = 0 with free column [f] set: each echelon row fixes its
         pivot coordinate. *)
      List.iter
        (fun (c, row) ->
          let sum = ref false in
          for i = c + 1 to ncols - 1 do
            if row.(i) && v.(i) then sum := not !sum
          done;
          v.(c) <- !sum)
        (List.rev echelon);
      v)
    free_cols

let models s =
  if s.nvars > 22 then invalid_arg "Gf2.models: too many variables";
  let acc = ref [] in
  for mask = (1 lsl s.nvars) - 1 downto 0 do
    let assignment = Array.init s.nvars (fun i -> (mask lsr i) land 1 = 1) in
    if satisfies assignment s then acc := assignment :: !acc
  done;
  !acc

let size s =
  List.fold_left
    (fun acc e -> acc + 1 + Array.fold_left (fun n c -> if c then n + 1 else n) 0 e.coeffs)
    0 s.equations

let pp ppf s =
  if s.equations = [] then Format.pp_print_string ppf "true"
  else
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf " & ")
      (fun ppf e ->
        let vars =
          List.filteri (fun i _ -> e.coeffs.(i)) (List.init s.nvars Fun.id)
        in
        if vars = [] then Format.fprintf ppf "0 = %d" (if e.rhs then 1 else 0)
        else
          Format.fprintf ppf "%a = %d"
            (Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.fprintf ppf " + ")
               (fun ppf v -> Format.fprintf ppf "p%d" v))
            vars
            (if e.rhs then 1 else 0))
      ppf s.equations
