type operation = {
  name : string;
  arity : int;
  table : int array;
}

let make ~name ~arity f =
  { name; arity; table = Array.init (1 lsl arity) (fun m -> if f m <> 0 then 1 else 0) }

let apply op args =
  if List.length args <> op.arity then invalid_arg "Polymorphism.apply: arity mismatch";
  let mask =
    List.fold_left
      (fun (acc, i) a ->
        match a with
        | 0 -> (acc, i + 1)
        | 1 -> (acc lor (1 lsl i), i + 1)
        | _ -> invalid_arg "Polymorphism.apply: argument not 0/1")
      (0, 0) args
    |> fst
  in
  op.table.(mask)

let popcount m =
  let rec loop m acc = if m = 0 then acc else loop (m lsr 1) (acc + (m land 1)) in
  loop m 0

let const0 = make ~name:"const0" ~arity:1 (fun _ -> 0)

let const1 = make ~name:"const1" ~arity:1 (fun _ -> 1)

let and2 = make ~name:"and" ~arity:2 (fun m -> if m = 0b11 then 1 else 0)

let or2 = make ~name:"or" ~arity:2 (fun m -> if m <> 0 then 1 else 0)

let majority3 = make ~name:"majority" ~arity:3 (fun m -> if popcount m >= 2 then 1 else 0)

let minority3 = make ~name:"minority" ~arity:3 (fun m -> popcount m land 1)

let projection ~arity i =
  if i < 0 || i >= arity then invalid_arg "Polymorphism.projection: index out of range";
  make ~name:(Printf.sprintf "proj%d/%d" i arity) ~arity (fun m -> (m lsr i) land 1)

let negation = make ~name:"not" ~arity:1 (fun m -> 1 - (m land 1))

(* Apply componentwise to [r] tuples given as masks of width [k]. *)
let apply_componentwise op ~width masks =
  let result = ref 0 in
  for pos = 0 to width - 1 do
    let argmask =
      List.fold_left
        (fun (acc, i) m -> ((acc lor (((m lsr pos) land 1) lsl i)), i + 1))
        (0, 0) masks
      |> fst
    in
    if op.table.(argmask) = 1 then result := !result lor (1 lsl pos)
  done;
  !result

let preserves op relation =
  let width = Boolean_relation.arity relation in
  let masks = Boolean_relation.masks relation in
  let rec choose chosen remaining =
    if remaining = 0 then
      Boolean_relation.mem relation (apply_componentwise op ~width (List.rev chosen))
    else
      List.for_all (fun m -> choose (m :: chosen) (remaining - 1)) masks
  in
  Boolean_relation.is_empty relation || choose [] op.arity

let preserves_structure op b =
  List.for_all (fun (_, r) -> preserves op r) (Classify.boolean_relations b)

let polymorphisms ~arity relation =
  if arity > 3 then invalid_arg "Polymorphism.polymorphisms: arity > 3";
  let entries = 1 lsl arity in
  List.filter_map
    (fun code ->
      let op =
        make ~name:(Printf.sprintf "op#%d/%d" code arity) ~arity (fun m ->
            (code lsr m) land 1)
      in
      if preserves op relation then Some op else None)
    (List.init (1 lsl entries) Fun.id)

let classes_via_polymorphisms relation =
  if Boolean_relation.is_empty relation then
    (* The empty relation is vacuously closed under every componentwise
       operation but contains neither constant tuple. *)
    [ Classify.Horn; Classify.Dual_horn; Classify.Bijunctive; Classify.Affine ]
  else
  (* 0-validity and 1-validity are preservation by the constants. *)
  List.filter_map
    (fun (cls, op) -> if preserves op relation then Some cls else None)
    [
      (Classify.Zero_valid, const0);
      (Classify.One_valid, const1);
      (Classify.Horn, and2);
      (Classify.Dual_horn, or2);
      (Classify.Bijunctive, majority3);
      (Classify.Affine, minority3);
    ]
