open Relational

(** Boolean relations: k-ary relations over the universe [{0, 1}].

    A tuple is stored as a bit mask whose bit [i] is the [i]-th component, so
    a k-ary relation is a set of integers in [[0, 2^k)].  Arities up to 60
    are supported. *)

type t

val create : int -> int list -> t
(** [create arity masks]. @raise Invalid_argument if [arity] is outside
    [0..60] or a mask has bits beyond the arity. *)

val full : int -> t
(** All [2^arity] tuples. *)

val arity : t -> int

val cardinal : t -> int

val is_empty : t -> bool

val mem : t -> int -> bool

val masks : t -> int list
(** Tuples as masks, increasing. *)

val tuples : t -> Tuple.t list
(** Tuples as 0/1 arrays. *)

val mask_of_tuple : Tuple.t -> int
(** @raise Invalid_argument if an entry is not 0/1 or the arity exceeds 60. *)

val tuple_of_mask : int -> int -> Tuple.t
(** [tuple_of_mask arity mask]. *)

val of_relation : Relation.t -> t
(** From a {!Relation.t} whose tuples are 0/1 vectors. *)

val to_relation : t -> Relation.t

val equal : t -> t -> bool

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(* Componentwise tuple operations (on masks of a given arity). *)

val tuple_and : int -> int -> int

val tuple_or : int -> int -> int

val tuple_xor3 : int -> int -> int -> int

val tuple_majority : int -> int -> int -> int

val closed_under2 : t -> (int -> int -> int) -> bool
(** Closure under a binary componentwise operation. *)

val closed_under3 : t -> (int -> int -> int -> int) -> bool

val ones : int -> int -> int list
(** [ones arity mask]: positions carrying a 1. *)

val complement_tuples : t -> t
(** Flip every bit of every tuple (not set complement). *)

val pp : Format.formatter -> t -> unit
