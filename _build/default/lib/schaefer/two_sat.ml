let check formula =
  if not (Cnf.is_two_cnf formula) then
    invalid_arg "Two_sat: clause with more than two literals"

(* Literal encoding: variable v -> nodes 2v (positive) and 2v+1 (negative). *)
let node_of l = (2 * l.Cnf.var) + if l.Cnf.sign then 0 else 1

let negate_node u = u lxor 1

let implication_graph formula =
  let n = formula.Cnf.nvars in
  let succ = Array.make (2 * n) [] in
  let add u v = succ.(u) <- v :: succ.(u) in
  let empty = ref false in
  List.iter
    (fun clause ->
      match clause with
      | [] -> empty := true
      | [ l ] -> add (negate_node (node_of l)) (node_of l)
      | [ l1; l2 ] ->
        add (negate_node (node_of l1)) (node_of l2);
        add (negate_node (node_of l2)) (node_of l1)
      | _ -> assert false)
    formula.Cnf.clauses;
  (succ, !empty)

(* Iterative Tarjan SCC; components are numbered in reverse topological
   order (sinks first). *)
let tarjan succ =
  let n = Array.length succ in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let comp = Array.make n (-1) in
  let stack = Stack.create () in
  let counter = ref 0 and ncomp = ref 0 in
  for root = 0 to n - 1 do
    if index.(root) < 0 then begin
      (* Explicit DFS stack: (node, remaining successors). *)
      let call = Stack.create () in
      let start v =
        index.(v) <- !counter;
        lowlink.(v) <- !counter;
        incr counter;
        Stack.push v stack;
        on_stack.(v) <- true;
        Stack.push (v, ref succ.(v)) call
      in
      start root;
      while not (Stack.is_empty call) do
        let v, rest = Stack.top call in
        match !rest with
        | w :: tl ->
          rest := tl;
          if index.(w) < 0 then start w
          else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w)
        | [] ->
          ignore (Stack.pop call);
          if lowlink.(v) = index.(v) then begin
            let continue_ = ref true in
            while !continue_ do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              comp.(w) <- !ncomp;
              if w = v then continue_ := false
            done;
            incr ncomp
          end;
          if not (Stack.is_empty call) then begin
            let parent, _ = Stack.top call in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
      done
    end
  done;
  comp

let solve formula =
  check formula;
  let succ, has_empty = implication_graph formula in
  if has_empty then None
  else begin
    let comp = tarjan succ in
    let n = formula.Cnf.nvars in
    let rec assign v acc =
      if v >= n then Some acc
      else if comp.(2 * v) = comp.((2 * v) + 1) then None
      else begin
        (* Tarjan numbers sinks first; the literal whose component comes
           first is implied by the other, so make it the true one. *)
        acc.(v) <- comp.(2 * v) < comp.((2 * v) + 1);
        assign (v + 1) acc
      end
    in
    assign 0 (Array.make n false)
  end

let solve_phase formula =
  check formula;
  let n = formula.Cnf.nvars in
  let value = Array.make n (-1) in
  let occurs = Array.make n [] in
  let ok = ref true in
  List.iter
    (fun clause ->
      match clause with
      | [] -> ok := false
      | c -> List.iter (fun l -> occurs.(l.Cnf.var) <- c :: occurs.(l.Cnf.var)) c)
    formula.Cnf.clauses;
  if not !ok then None
  else begin
    let trail = Stack.create () in
    let queue = Queue.create () in
    let conflict = ref false in
    let set v b =
      if value.(v) = -1 then begin
        value.(v) <- (if b then 1 else 0);
        Stack.push v trail;
        Queue.add v queue
      end
      else if value.(v) <> if b then 1 else 0 then conflict := true
    in
    let lit_value l =
      match value.(l.Cnf.var) with
      | -1 -> -1
      | v -> if l.Cnf.sign then v else 1 - v
    in
    let propagate_from v0 b0 =
      conflict := false;
      Queue.clear queue;
      set v0 b0;
      while (not !conflict) && not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        List.iter
          (fun clause ->
            if not !conflict then
              match clause with
              | [ l ] -> if lit_value l = 0 then conflict := true
              | [ l1; l2 ] ->
                let v1 = lit_value l1 and v2 = lit_value l2 in
                if v1 = 0 && v2 = 0 then conflict := true
                else if v1 = 0 && v2 = -1 then set l2.Cnf.var l2.Cnf.sign
                else if v2 = 0 && v1 = -1 then set l1.Cnf.var l1.Cnf.sign
              | _ -> assert false)
          occurs.(v)
      done;
      not !conflict
    in
    let undo_phase () =
      while not (Stack.is_empty trail) do
        value.(Stack.pop trail) <- -1
      done
    in
    (* Unit clauses must hold in every phase; seed them first. *)
    let seed_ok =
      List.for_all
        (fun clause ->
          match clause with
          | [ l ] ->
            (match lit_value l with
            | 0 -> false
            | 1 -> true
            | _ -> propagate_from l.Cnf.var l.Cnf.sign)
          | _ -> true)
        formula.Cnf.clauses
    in
    (* Keep seeded assignments permanently. *)
    Stack.clear trail;
    if not seed_ok then None
    else begin
      let rec phases v =
        if v >= n then Some (Array.map (fun x -> x = 1) value)
        else if value.(v) >= 0 then phases (v + 1)
        else if propagate_from v true then begin
          Stack.clear trail;
          phases (v + 1)
        end
        else begin
          undo_phase ();
          if propagate_from v false then begin
            Stack.clear trail;
            phases (v + 1)
          end
          else None
        end
      in
      phases 0
    end
  end
