(** Propositional CNF formulas over variables [0 .. nvars-1]. *)

type literal = { var : int; sign : bool }
(** [sign = true] is the positive literal. *)

type clause = literal list

type t = { nvars : int; clauses : clause list }

val pos : int -> literal

val neg : int -> literal

val negate : literal -> literal

val make : nvars:int -> clause list -> t
(** @raise Invalid_argument if a variable is out of range. *)

val size : t -> int
(** Total number of literal occurrences. *)

val clause_count : t -> int

val is_horn : t -> bool
(** At most one positive literal per clause. *)

val is_dual_horn : t -> bool

val is_two_cnf : t -> bool
(** At most two literals per clause. *)

val eval_literal : bool array -> literal -> bool

val eval_clause : bool array -> clause -> bool

val satisfies : bool array -> t -> bool

val models : t -> bool array list
(** All satisfying assignments by exhaustive enumeration; for testing only.
    @raise Invalid_argument when [nvars > 22]. *)

val map_vars : nvars:int -> (int -> int) -> t -> t
(** Substitute variables; used to instantiate a defining formula [phi_R] on
    the elements of a tuple. *)

val conjoin : t list -> t
(** Conjunction of formulas over a common variable set.
    @raise Invalid_argument when the variable counts differ. *)

val flip_signs : t -> t
(** Negate every literal (maps Horn to dual Horn and back; a 0/1 assignment
    satisfies the flipped formula iff its complement satisfies the
    original). *)

val pp : Format.formatter -> t -> unit
