(** Polymorphisms of Boolean relations: the algebraic view of tractability
    that the paper's concluding remarks point to (Jeavons et al.).

    An operation [f : {0,1}^r -> {0,1}] is a polymorphism of a relation [R]
    when applying [f] componentwise to any [r] tuples of [R] lands back in
    [R].  Schaefer's classes are exactly the relations preserved by
    particular operations: constants (0/1-validity), AND (Horn), OR (dual
    Horn), the ternary majority (bijunctive), and the ternary XOR/minority
    (affine). *)

type operation = {
  name : string;
  arity : int;
  table : int array;  (** [table.(m)] is the value on the argument tuple
                          encoded by mask [m]; length [2^arity]. *)
}

val make : name:string -> arity:int -> (int -> int) -> operation
(** Build from a function on argument masks. *)

val apply : operation -> int list -> int
(** @raise Invalid_argument on an argument-count mismatch or non-0/1
    arguments. *)

(* The named operations behind Schaefer's classes. *)

val const0 : operation

val const1 : operation

val and2 : operation

val or2 : operation

val majority3 : operation

val minority3 : operation
(** x XOR y XOR z. *)

val projection : arity:int -> int -> operation

val negation : operation

val preserves : operation -> Boolean_relation.t -> bool
(** Is the operation a polymorphism of the relation? *)

val preserves_structure : operation -> Relational.Structure.t -> bool
(** Polymorphism of every relation of a Boolean structure. *)

val polymorphisms : arity:int -> Boolean_relation.t -> operation list
(** All [2^(2^arity)] candidate operations of the given arity that preserve
    the relation.  Keep [arity <= 3]. *)

val classes_via_polymorphisms : Boolean_relation.t -> Classify.schaefer_class list
(** Schaefer classes read off the named polymorphisms; must agree with
    {!Classify.relation_classes}. *)
