(** Linear algebra over the two-element field GF(2).

    Used for Schaefer's affine class: an affine relation is the solution set
    of a linear system, recovered via the nullspace of the relation's tuple
    matrix (Theorem 3.2), and affine satisfiability reduces to Gaussian
    elimination. *)

type equation = { coeffs : bool array; rhs : bool }
(** [sum_i coeffs.(i) * x_i = rhs] over GF(2). *)

type system = { nvars : int; equations : equation list }

val make_system : nvars:int -> equation list -> system
(** @raise Invalid_argument on coefficient-vector length mismatch. *)

val satisfies : bool array -> system -> bool

val solve : system -> bool array option
(** Some solution (free variables set to 0), or [None] when inconsistent. *)

val rank : bool array list -> int
(** Rank of a list of equal-length GF(2) row vectors. *)

val nullspace_basis : ncols:int -> bool array list -> bool array list
(** Basis of the right nullspace [{a | M a = 0}] of the matrix whose rows
    are the given vectors. *)

val models : system -> bool array list
(** All solutions by exhaustive enumeration; for testing only.
    @raise Invalid_argument when [nvars > 22]. *)

val size : system -> int
(** Total number of nonzero coefficients plus one per equation. *)

val pp : Format.formatter -> system -> unit
