(** Linear-time Horn satisfiability by positive unit propagation
    (Dowling–Gallier / Beeri–Bernstein). *)

val solve : Cnf.t -> bool array option
(** Least model of a satisfiable Horn formula (the propagation fixpoint), or
    [None] when unsatisfiable.
    @raise Invalid_argument if the formula is not Horn. *)

val solve_dual : Cnf.t -> bool array option
(** Same for dual Horn formulas, via the sign-flip duality (the returned
    model is the greatest one).
    @raise Invalid_argument if the formula is not dual Horn. *)
