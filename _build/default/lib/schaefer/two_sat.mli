(** 2-SAT solvers.

    [solve] is the classical linear-time algorithm via strongly connected
    components of the implication graph.  [solve_phase] is the
    phase-propagation algorithm from Lewis–Papadimitriou that the paper
    emulates in its direct bijunctive algorithm (Theorem 3.4): pick an
    unassigned variable, guess a value, propagate; on conflict undo and try
    the other value; fail only if both guesses conflict. *)

val solve : Cnf.t -> bool array option
(** @raise Invalid_argument if a clause has more than two literals. *)

val solve_phase : Cnf.t -> bool array option
(** @raise Invalid_argument if a clause has more than two literals. *)
