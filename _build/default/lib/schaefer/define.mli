(** Defining formulas for nontrivial Schaefer relations (Theorem 3.2).

    For a relation [R] in one of the four nontrivial Schaefer classes, these
    constructors produce a formula [phi_R] over variables [p_0 .. p_{k-1}]
    with [models(phi_R) = R], in polynomial time:

    - Horn / dual Horn: a Horn (resp. dual Horn) CNF built from the closure
      lattice of the relation's one-sets (after Dechter–Pearl);
    - bijunctive: the conjunction of all 1- and 2-clauses satisfied by [R];
    - affine: a linear system over GF(2) from a basis of the nullspace of
      the augmented tuple matrix. *)

type t =
  | Clausal of Cnf.t
  | Linear of Gf2.system

val horn_formula : Boolean_relation.t -> Cnf.t
(** @raise Invalid_argument if the relation is not Horn (AND-closed). *)

val dual_horn_formula : Boolean_relation.t -> Cnf.t
(** @raise Invalid_argument if the relation is not dual Horn (OR-closed). *)

val bijunctive_formula : Boolean_relation.t -> Cnf.t
(** @raise Invalid_argument if the relation is not bijunctive
    (majority-closed). *)

val affine_system : Boolean_relation.t -> Gf2.system
(** @raise Invalid_argument if the relation is not affine (XOR3-closed). *)

val defining : Boolean_relation.t -> Classify.schaefer_class -> t
(** Dispatch on the four nontrivial classes.
    @raise Invalid_argument on [Zero_valid] / [One_valid] (no formula is
    needed there) or when the relation is outside the requested class. *)

val size : t -> int
(** Length measure of the produced formula (literal/coefficient count). *)
