lib/datalog/horn_program.mli: Program Relational Structure
