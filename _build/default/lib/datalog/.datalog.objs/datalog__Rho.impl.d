lib/datalog/rho.ml: Array Eval List Printf Program Relation Relational String Structure Vocabulary
