lib/datalog/programs.mli: Program
