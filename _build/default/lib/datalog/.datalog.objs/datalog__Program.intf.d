lib/datalog/program.mli: Format
