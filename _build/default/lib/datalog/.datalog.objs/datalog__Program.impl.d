lib/datalog/program.ml: Array Format Hashtbl List
