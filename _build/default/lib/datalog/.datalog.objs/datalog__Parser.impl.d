lib/datalog/parser.ml: List Printf Program String
