lib/datalog/programs.ml: Parser
