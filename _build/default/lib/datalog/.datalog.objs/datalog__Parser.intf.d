lib/datalog/parser.mli: Program
