lib/datalog/eval.mli: Program Relation Relational Structure
