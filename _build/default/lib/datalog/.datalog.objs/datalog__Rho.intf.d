lib/datalog/rho.mli: Program Relational Structure
