lib/datalog/horn_program.ml: Array Eval Fun List Printf Program Relation Relational Structure Vocabulary
