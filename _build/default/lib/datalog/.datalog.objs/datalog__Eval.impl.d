lib/datalog/eval.ml: Array Hashtbl List Program Relation Relational Structure
