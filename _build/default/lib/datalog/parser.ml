exception Parse_error of string

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Turnstile
  | Period
  | Eof

let is_ident_start c = (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '\''

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '%' then begin
      (* Comment to end of line. *)
      while !i < n && input.[!i] <> '\n' do
        incr i
      done
    end
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      tokens := Ident (String.sub input start (!i - start)) :: !tokens
    end
    else begin
      (match c with
      | '(' -> tokens := Lparen :: !tokens
      | ')' -> tokens := Rparen :: !tokens
      | ',' -> tokens := Comma :: !tokens
      | '.' -> tokens := Period :: !tokens
      | ':' ->
        if !i + 1 < n && input.[!i + 1] = '-' then begin
          tokens := Turnstile :: !tokens;
          incr i
        end
        else raise (Parse_error (Printf.sprintf "unexpected ':' at offset %d" !i))
      | _ ->
        raise (Parse_error (Printf.sprintf "unexpected character %C at offset %d" c !i)));
      incr i
    end
  done;
  List.rev (Eof :: !tokens)

type state = { mutable tokens : token list }

let peek st = match st.tokens with [] -> Eof | t :: _ -> t

let advance st = match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token what =
  if peek st = token then advance st else raise (Parse_error ("expected " ^ what))

let parse_ident st what =
  match peek st with
  | Ident name ->
    advance st;
    name
  | _ -> raise (Parse_error ("expected " ^ what))

let parse_atom st =
  let pred = parse_ident st "a predicate" in
  if peek st = Lparen then begin
    advance st;
    let args =
      if peek st = Rparen then []
      else begin
        let rec loop acc =
          let v = parse_ident st "a variable" in
          if peek st = Comma then begin
            advance st;
            loop (v :: acc)
          end
          else List.rev (v :: acc)
        in
        loop []
      end
    in
    expect st Rparen "')'";
    Program.atom pred args
  end
  else Program.atom pred []

let parse_rule st =
  let head = parse_atom st in
  let body =
    if peek st = Turnstile then begin
      advance st;
      let rec loop acc =
        let a = parse_atom st in
        if peek st = Comma then begin
          advance st;
          loop (a :: acc)
        end
        else List.rev (a :: acc)
      in
      loop []
    end
    else []
  in
  expect st Period "'.'";
  Program.rule head body

let parse ~goal input =
  let st = { tokens = tokenize input } in
  let rec rules acc =
    if peek st = Eof then List.rev acc else rules (parse_rule st :: acc)
  in
  let rules = rules [] in
  if rules = [] then raise (Parse_error "empty program");
  Program.make ~goal rules
