open Relational

let predicate_name b =
  "T" ^ String.concat "_" (List.map string_of_int (Array.to_list b))

let var i = Printf.sprintf "X%d" i

(* All k-tuples over [0 .. n-1]. *)
let all_tuples n k =
  let rec loop = function
    | 0 -> [ [] ]
    | i -> List.concat_map (fun t -> List.init n (fun c -> c :: t)) (loop (i - 1))
  in
  List.map Array.of_list (loop k)

let build b ~k =
  if k < 1 then invalid_arg "Rho.build: k must be positive";
  let n = Structure.size b in
  if n = 0 then invalid_arg "Rho.build: target structure is empty";
  let tuples = all_tuples n k in
  let rules = ref [] in
  let add r = rules := r :: !rules in
  (* Rule group 1: a configuration whose correspondence is not a mapping is
     immediately winning for the Spoiler. *)
  List.iter
    (fun bt ->
      for i = 0 to k - 1 do
        for j = i + 1 to k - 1 do
          if bt.(i) <> bt.(j) then begin
            let args = Array.init k var in
            args.(j) <- var i;
            add (Program.rule { Program.pred = predicate_name bt; args } [])
          end
        done
      done)
    tuples;
  (* Rule group 2: a pebbled fact of A that B does not match. *)
  List.iter
    (fun bt ->
      List.iter
        (fun (rname, arity) ->
          let rel = Structure.relation b rname in
          List.iter
            (fun positions ->
              let image = Array.map (fun i -> bt.(i)) positions in
              if not (Relation.mem rel image) then
                add
                  (Program.rule
                     { Program.pred = predicate_name bt; args = Array.init k var }
                     [ { Program.pred = rname;
                         args = Array.map var positions } ]))
            (all_tuples k arity))
        (Vocabulary.symbols (Structure.vocabulary b)))
    tuples;
  (* Rule group 3: the Spoiler repebbles position j; whatever the Duplicator
     answers, the Spoiler still wins. *)
  List.iter
    (fun bt ->
      for j = 0 to k - 1 do
        let head_args = Array.init k var in
        let body =
          List.init n (fun c ->
              let bt' = Array.copy bt in
              bt'.(j) <- c;
              let args = Array.init k var in
              args.(j) <- "Y";
              { Program.pred = predicate_name bt'; args })
        in
        add (Program.rule { Program.pred = predicate_name bt; args = head_args } body)
      done)
    tuples;
  (* Goal: the Spoiler wins from some initial placement against every
     Duplicator reply. *)
  add
    (Program.rule
       { Program.pred = "S"; args = [||] }
       (List.map
          (fun bt -> { Program.pred = predicate_name bt; args = Array.init k var })
          tuples));
  Program.make ~goal:"S" (List.rev !rules)

let spoiler_wins b ~k a = Eval.goal_holds (build b ~k) a
