type atom = { pred : string; args : string array }

type rule = { head : atom; body : atom list }

type t = { rules : rule list; goal : string }

let atom pred args = { pred; args = Array.of_list args }

let rule head body = { head; body }

let distinct_in_order vars =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    vars

let head_variables r = distinct_in_order (Array.to_list r.head.args)

let body_variables r =
  distinct_in_order (List.concat_map (fun a -> Array.to_list a.args) r.body)

let rule_variables r =
  distinct_in_order (Array.to_list r.head.args @ List.concat_map (fun a -> Array.to_list a.args) r.body)

let make ~goal rules =
  let arities = Hashtbl.create 16 in
  let record a =
    match Hashtbl.find_opt arities a.pred with
    | Some n when n <> Array.length a.args ->
      invalid_arg ("Program.make: predicate " ^ a.pred ^ " used with two arities")
    | _ -> Hashtbl.replace arities a.pred (Array.length a.args)
  in
  List.iter
    (fun r ->
      record r.head;
      List.iter record r.body)
    rules;
  let idbs = List.map (fun r -> r.head.pred) rules in
  if not (List.mem goal idbs) then
    invalid_arg ("Program.make: goal " ^ goal ^ " is not an IDB predicate");
  { rules; goal }

let idb_predicates p = distinct_in_order (List.map (fun r -> r.head.pred) p.rules)

let edb_predicates p =
  let idbs = idb_predicates p in
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  List.iter
    (fun r ->
      List.iter
        (fun a ->
          if (not (List.mem a.pred idbs)) && not (Hashtbl.mem seen a.pred) then begin
            Hashtbl.add seen a.pred ();
            acc := (a.pred, Array.length a.args) :: !acc
          end)
        r.body)
    p.rules;
  List.rev !acc

let predicate_arity p name =
  let rec scan = function
    | [] -> raise Not_found
    | r :: rest ->
      if r.head.pred = name then Array.length r.head.args
      else begin
        match List.find_opt (fun a -> a.pred = name) r.body with
        | Some a -> Array.length a.args
        | None -> scan rest
      end
  in
  scan p.rules

let is_k_datalog k p =
  List.for_all
    (fun r ->
      List.length (body_variables r) <= k && List.length (head_variables r) <= k)
    p.rules

let width p =
  List.fold_left
    (fun acc r ->
      max acc (max (List.length (body_variables r)) (List.length (head_variables r))))
    0 p.rules

let pp_atom ppf a =
  if Array.length a.args = 0 then Format.pp_print_string ppf a.pred
  else
    Format.fprintf ppf "%s(%a)" a.pred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Format.pp_print_string)
      (Array.to_list a.args)

let pp_rule ppf r =
  if r.body = [] then Format.fprintf ppf "%a." pp_atom r.head
  else
    Format.fprintf ppf "%a :- %a." pp_atom r.head
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_atom)
      r.body

let pp ppf p =
  Format.fprintf ppf "@[<v>%% goal: %s@,%a@]" p.goal
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_rule)
    p.rules
