open Relational

type strategy = Naive | Seminaive

type stats = { rounds : int; derived : int }

(* Evaluate one rule against the given fact lookup.  [delta] optionally
   designates one body-atom index whose relation is replaced, to implement
   semi-naive evaluation.  Returns the derived head tuples. *)
let eval_rule ~universe ~facts ?delta (r : Program.rule) =
  let vars = Program.rule_variables r in
  let index = List.mapi (fun i v -> (v, i)) vars in
  let var v = List.assoc v index in
  let subst = Array.make (List.length vars) (-1) in
  let out = ref [] in
  let head_positions = Array.map var r.Program.head.args in
  (* Emit head instances, ranging unbound head variables over the universe
     consistently (the same variable gets the same value). *)
  let rec emit_from i =
    if i >= Array.length head_positions then
      out := Array.map (fun v -> subst.(v)) head_positions :: !out
    else if subst.(head_positions.(i)) >= 0 then emit_from (i + 1)
    else begin
      let v = head_positions.(i) in
      for e = 0 to universe - 1 do
        subst.(v) <- e;
        emit_from (i + 1)
      done;
      subst.(v) <- -1
    end
  in
  let rec join atoms i =
    match atoms with
    | [] -> emit_from 0
    | (a : Program.atom) :: rest ->
      let rel =
        match delta with
        | Some (j, d) when j = i -> d
        | _ -> facts a.Program.pred (Array.length a.Program.args)
      in
      let positions = Array.map var a.Program.args in
      Relation.iter
        (fun t ->
          let bound = ref [] in
          let ok = ref true in
          Array.iteri
            (fun p v ->
              if !ok then
                if subst.(v) < 0 then begin
                  subst.(v) <- t.(p);
                  bound := v :: !bound
                end
                else if subst.(v) <> t.(p) then ok := false)
            positions;
          if !ok then join rest (i + 1);
          List.iter (fun v -> subst.(v) <- -1) !bound)
        rel
  in
  join r.Program.body 0;
  !out

let fixpoint_with_stats ?(strategy = Seminaive) p structure =
  let universe = Structure.size structure in
  let idbs = Program.idb_predicates p in
  let tables = Hashtbl.create 16 in
  List.iter
    (fun name -> Hashtbl.replace tables name (Relation.empty (Program.predicate_arity p name)))
    idbs;
  let facts name arity =
    match Hashtbl.find_opt tables name with
    | Some r -> r
    | None -> (
      match Structure.relation structure name with
      | r -> r
      | exception Not_found -> Relation.empty arity)
  in
  let derived = ref 0 in
  let add name tuples =
    let r = Hashtbl.find tables name in
    let r' =
      List.fold_left
        (fun acc t -> if Relation.mem acc t then acc else (incr derived; Relation.add acc t))
        r tuples
    in
    let fresh = Relation.diff r' r in
    Hashtbl.replace tables name r';
    fresh
  in
  let rounds = ref 0 in
  (match strategy with
  | Naive ->
    let changed = ref true in
    while !changed do
      incr rounds;
      changed := false;
      List.iter
        (fun r ->
          let tuples = eval_rule ~universe ~facts r in
          if not (Relation.is_empty (add r.Program.head.pred tuples)) then changed := true)
        p.Program.rules
    done
  | Seminaive ->
    (* Round 0: full evaluation (IDB tables are empty, so only rules without
       IDB body atoms can fire). *)
    incr rounds;
    let deltas = Hashtbl.create 16 in
    List.iter
      (fun name -> Hashtbl.replace deltas name (Relation.empty (Program.predicate_arity p name)))
      idbs;
    List.iter
      (fun r ->
        let fresh = add r.Program.head.pred (eval_rule ~universe ~facts r) in
        Hashtbl.replace deltas r.Program.head.pred
          (Relation.union (Hashtbl.find deltas r.Program.head.pred) fresh))
      p.Program.rules;
    let any_delta () =
      Hashtbl.fold (fun _ d acc -> acc || not (Relation.is_empty d)) deltas false
    in
    while any_delta () do
      incr rounds;
      let new_deltas = Hashtbl.create 16 in
      List.iter
        (fun name ->
          Hashtbl.replace new_deltas name
            (Relation.empty (Program.predicate_arity p name)))
        idbs;
      List.iter
        (fun r ->
          List.iteri
            (fun i (a : Program.atom) ->
              if List.mem a.Program.pred idbs then begin
                let d = Hashtbl.find deltas a.Program.pred in
                if not (Relation.is_empty d) then begin
                  let fresh =
                    add r.Program.head.pred (eval_rule ~universe ~facts ~delta:(i, d) r)
                  in
                  Hashtbl.replace new_deltas r.Program.head.pred
                    (Relation.union (Hashtbl.find new_deltas r.Program.head.pred) fresh)
                end
              end)
            r.Program.body)
        p.Program.rules;
      Hashtbl.reset deltas;
      Hashtbl.iter (fun name d -> Hashtbl.replace deltas name d) new_deltas
    done);
  ( List.map (fun name -> (name, Hashtbl.find tables name)) idbs,
    { rounds = !rounds; derived = !derived } )

let fixpoint ?strategy p structure = fst (fixpoint_with_stats ?strategy p structure)

let goal_relation ?strategy p structure =
  List.assoc p.Program.goal (fixpoint ?strategy p structure)

let goal_holds ?strategy p structure =
  not (Relation.is_empty (goal_relation ?strategy p structure))
