let non_2_colorability =
  Parser.parse ~goal:"Q"
    {|
      P(X, Y) :- E(X, Y).
      P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
      Q :- P(X, X).
    |}

let transitive_closure =
  Parser.parse ~goal:"TC"
    {|
      TC(X, Y) :- E(X, Y).
      TC(X, Y) :- TC(X, Z), E(Z, Y).
    |}

let same_generation =
  Parser.parse ~goal:"SG"
    {|
      SG(X, X) :- P(X, Y).
      SG(X, X) :- P(Y, X).
      SG(X, Y) :- P(XP, X), SG(XP, YP), P(YP, Y).
    |}
