(** A few stock Datalog programs used in the paper, in tests and in the
    examples. *)

val non_2_colorability : Program.t
(** The paper's Section 4 example: a 4-Datalog program whose goal holds on a
    graph [E] iff the graph has an odd closed walk, i.e. is not
    2-colorable. *)

val transitive_closure : Program.t
(** Goal [TC(x, y)]: reachability over edge relation [E]. *)

val same_generation : Program.t
(** Goal [SG(x, y)] over a parent relation [P]: the classic same-generation
    program. *)
