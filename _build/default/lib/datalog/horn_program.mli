open Relational

(** Remark 4.10(2): for a Boolean Horn structure [B] whose relations have
    arity at most [k], the complement of [CSP(B)] is expressible by a
    k-Datalog program — the declarative rendering of the direct Horn
    algorithm of Theorem 3.4.

    The IDB predicate [__One(x)] says "element x is forced to 1"; for every
    valid implication [X -> j] of a target relation there is a rule, and the
    goal fires when some fact's forced positions are dominated by no target
    tuple. *)

val build : Structure.t -> Program.t
(** @raise Invalid_argument if [B] is not a Boolean structure with all
    relations Horn (AND-closed). *)

val no_homomorphism : Structure.t -> Structure.t -> bool
(** [no_homomorphism b a]: evaluate the program for [B] on [A]; [true] iff
    there is no homomorphism [A -> B]. *)
