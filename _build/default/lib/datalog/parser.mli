(** Parser for Datalog programs.  Each rule ends with a period:

    {[
      P(X, Y) :- E(X, Y).
      P(X, Y) :- P(X, Z), E(Z, W), E(W, Y).
      Q :- P(X, X).
    ]}

    Facts may be written without a body ([T(X, X).]). *)

exception Parse_error of string

val parse : goal:string -> string -> Program.t
(** @raise Parse_error on malformed input;
    @raise Invalid_argument if the goal is not an IDB predicate. *)
