open Relational

(** Bottom-up evaluation of Datalog programs over a finite structure (the
    EDB).  Both naive and semi-naive strategies compute the least fixpoint;
    semi-naive restricts rule firings to those using at least one
    newly-derived fact.

    Variables that appear in a rule head but not in its body range over the
    whole universe of the input structure. *)

type strategy = Naive | Seminaive

type stats = {
  rounds : int;  (** Fixpoint iterations until saturation. *)
  derived : int;  (** Total IDB facts derived. *)
}

val fixpoint :
  ?strategy:strategy -> Program.t -> Structure.t -> (string * Relation.t) list
(** All IDB relations at the least fixpoint. *)

val fixpoint_with_stats :
  ?strategy:strategy -> Program.t -> Structure.t -> (string * Relation.t) list * stats

val goal_relation : ?strategy:strategy -> Program.t -> Structure.t -> Relation.t

val goal_holds : ?strategy:strategy -> Program.t -> Structure.t -> bool
(** Whether the goal relation is nonempty (the Boolean answer for 0-ary
    goals). *)
