open Relational

(** The canonical k-Datalog program [rho_B] of Theorem 4.7(2): for a fixed
    finite structure [B], it expresses, over an input structure [A], the
    query "does the Spoiler win the existential k-pebble game on [A] and
    [B]?".

    Consequently (Theorem 4.8), whenever [not CSP(B)] is expressible in
    k-Datalog at all, [rho_B] expresses it.

    The program has one k-ary IDB predicate [T_b] per k-tuple [b] of
    elements of [B] — use it only for small [B] and small [k]. *)

val predicate_name : int array -> string
(** Name of [T_b]. *)

val build : Structure.t -> k:int -> Program.t
(** @raise Invalid_argument when [k < 1] or [B] is empty. *)

val spoiler_wins : Structure.t -> k:int -> Structure.t -> bool
(** [spoiler_wins b ~k a]: evaluate [rho_B] on [A]. *)
