(** Datalog programs: finite sets of rules

    {[ t0 :- t1, ..., tm ]}

    where each [ti] is an atom over variables.  Predicates occurring in some
    rule head are intensional (IDB); all others are extensional (EDB).  One
    IDB predicate is designated as the goal.

    Rules whose head mentions variables absent from the body ("unsafe"
    rules) are permitted; evaluation ranges such variables over the
    universe of the input structure.  The canonical game programs of
    Theorem 4.7 need this. *)

type atom = { pred : string; args : string array }

type rule = { head : atom; body : atom list }

type t = { rules : rule list; goal : string }

val make : goal:string -> rule list -> t
(** @raise Invalid_argument if a predicate is used with two arities, or the
    goal is not an IDB predicate. *)

val atom : string -> string list -> atom

val rule : atom -> atom list -> rule

val idb_predicates : t -> string list
(** In first-appearance order. *)

val edb_predicates : t -> (string * int) list

val predicate_arity : t -> string -> int
(** @raise Not_found for unknown predicates. *)

val rule_variables : rule -> string list
(** Distinct variables of head and body, in first-occurrence order. *)

val body_variables : rule -> string list

val head_variables : rule -> string list

val is_k_datalog : int -> t -> bool
(** Every rule has at most [k] distinct body variables and at most [k]
    distinct head variables (Section 4). *)

val width : t -> int
(** The least [k] such that the program is k-Datalog. *)

val pp : Format.formatter -> t -> unit
