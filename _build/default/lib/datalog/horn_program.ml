open Relational

let var i = Printf.sprintf "X%d" i

(* All subsets of positions [0..k-1], as bit masks. *)
let subsets k = List.init (1 lsl k) Fun.id

let positions_of_mask k mask =
  List.filter (fun i -> (mask lsr i) land 1 = 1) (List.init k Fun.id)

let build b =
  if Structure.size b <> 2 then invalid_arg "Horn_program.build: target is not Boolean";
  let rules = ref [] in
  let add r = rules := r :: !rules in
  List.iter
    (fun (name, arity) ->
      let masks =
        Relation.fold
          (fun t acc ->
            let m = ref 0 in
            Array.iteri (fun i v -> if v = 1 then m := !m lor (1 lsl i)) t;
            !m :: acc)
          (Structure.relation b name)
          []
      in
      (* Horn check: AND-closure. *)
      List.iter
        (fun m1 ->
          List.iter
            (fun m2 ->
              if not (List.mem (m1 land m2) masks) then
                invalid_arg ("Horn_program.build: relation " ^ name ^ " is not Horn"))
            masks)
        masks;
      List.iter
        (fun x ->
          let antecedents =
            List.map (fun i -> { Program.pred = "__One"; args = [| var i |] })
              (positions_of_mask arity x)
          in
          let body = { Program.pred = name; args = Array.init arity var } :: antecedents in
          (* Valid implications X -> j become One rules. *)
          for j = 0 to arity - 1 do
            if (x lsr j) land 1 = 0 then begin
              let valid =
                List.for_all
                  (fun t' -> t' land x <> x || (t' lsr j) land 1 = 1)
                  masks
              in
              if valid then
                add (Program.rule { Program.pred = "__One"; args = [| var j |] } body)
            end
          done;
          (* A forced set dominated by no target tuple refutes the instance. *)
          if not (List.exists (fun t' -> t' land x = x) masks) then
            add (Program.rule { Program.pred = "__NoHom"; args = [||] } body))
        (subsets arity))
    (Vocabulary.symbols (Structure.vocabulary b));
  (* Ensure both IDB predicates exist even for degenerate targets. *)
  add
    (Program.rule { Program.pred = "__NoHom"; args = [||] }
       [ { Program.pred = "__Never"; args = [||] } ]);
  add
    (Program.rule { Program.pred = "__One"; args = [| "X" |] }
       [ { Program.pred = "__Never"; args = [||] }; { Program.pred = "__One"; args = [| "X" |] } ]);
  Program.make ~goal:"__NoHom" (List.rev !rules)

let no_homomorphism b a = Eval.goal_holds (build b) a
