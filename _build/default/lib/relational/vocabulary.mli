(** Relational vocabularies: finite sets of relation symbols with arities. *)

type t

val create : (string * int) list -> t
(** [create symbols] builds a vocabulary from [(name, arity)] pairs.
    @raise Invalid_argument on duplicate names or negative arities. *)

val empty : t

val symbols : t -> (string * int) list
(** Symbols in declaration order. *)

val names : t -> string list

val arity : t -> string -> int
(** @raise Not_found if the symbol is absent. *)

val mem : t -> string -> bool

val size : t -> int
(** Number of relation symbols. *)

val max_arity : t -> int
(** Largest arity; [0] for the empty vocabulary. *)

val add : t -> string -> int -> t
(** Append a fresh symbol. @raise Invalid_argument if already present. *)

val union : t -> t -> t
(** Union of two vocabularies.
    @raise Invalid_argument if a shared name has conflicting arities. *)

val equal : t -> t -> bool
(** Same symbols with same arities (order-insensitive). *)

val subset : t -> t -> bool
(** [subset v w] holds when every symbol of [v] occurs in [w] with the same
    arity. *)

val pp : Format.formatter -> t -> unit
