let symbol p i q j = Printf.sprintf "E_%s_%d_%s_%d" p i q j

let vocabulary vocab =
  let symbols = Vocabulary.symbols vocab in
  let names =
    List.concat_map
      (fun (p, ap) ->
        List.concat_map
          (fun (q, aq) ->
            List.concat_map
              (fun i -> List.init aq (fun j -> (symbol p i q j, 2)))
              (List.init ap Fun.id))
          symbols)
      symbols
  in
  Vocabulary.create names

let encode_with_index a =
  let vocab = Structure.vocabulary a in
  let facts =
    List.rev (Structure.fold_tuples (fun name t acc -> (name, t) :: acc) a [])
  in
  let facts = Array.of_list facts in
  let bvocab = vocabulary vocab in
  let base = Structure.create bvocab ~size:(Array.length facts) in
  let result = ref base in
  Array.iteri
    (fun si (p, s) ->
      Array.iteri
        (fun ti (q, t) ->
          Array.iteri
            (fun i si_val ->
              Array.iteri
                (fun j tj_val ->
                  if si_val = tj_val then
                    result := Structure.add_tuple !result (symbol p i q j) [| si; ti |])
                t)
            s)
        facts)
    facts;
  (!result, facts)

let encode a = fst (encode_with_index a)

let encode_economical a =
  let vocab = Structure.vocabulary a in
  let facts =
    Array.of_list
      (List.rev (Structure.fold_tuples (fun name t acc -> (name, t) :: acc) a []))
  in
  let bvocab = vocabulary vocab in
  let base = Structure.create bvocab ~size:(Array.length facts) in
  (* Reflexive pairs: every fact knows its own coincidences. *)
  let result = ref base in
  Array.iteri
    (fun si (p, s) ->
      Array.iteri
        (fun i si_val ->
          Array.iteri
            (fun j sj_val ->
              if si_val = sj_val then
                result := Structure.add_tuple !result (symbol p i p j) [| si; si |])
            s)
        s)
    facts;
  (* Chain the occurrences of each element across facts. *)
  let occurrences = Hashtbl.create 64 in
  Array.iteri
    (fun si (p, s) ->
      Array.iteri
        (fun i v ->
          let prev = Hashtbl.find_opt occurrences v in
          (match prev with
          | Some (sj, q, j) ->
            result := Structure.add_tuple !result (symbol q j p i) [| sj; si |];
            result := Structure.add_tuple !result (symbol p i q j) [| si; sj |]
          | None -> ());
          Hashtbl.replace occurrences v (si, p, i))
        s)
    facts;
  !result
