(** The tagged-sum encoding [A + B] of a pair of structures over a common
    vocabulary (Section 4): one structure over the vocabulary
    [sigma_1 + sigma_2], whose universe is the disjoint union of the two
    universes, with unary markers [D1]/[D2] for the two halves and one copy
    [R1]/[R2] of every relation symbol.  It lets queries about pairs of
    structures — like "does the Spoiler win the existential k-pebble
    game?" — be phrased as ordinary queries about a single structure. *)

val left_name : string -> string
(** [R1]. *)

val right_name : string -> string
(** [R2]. *)

val d1 : string

val d2 : string

val vocabulary : Vocabulary.t -> Vocabulary.t
(** [sigma_1 + sigma_2]. *)

val encode : Structure.t -> Structure.t -> Structure.t
(** [A + B]; elements of [B] are shifted by [Structure.size A].
    @raise Invalid_argument when the vocabularies differ. *)
