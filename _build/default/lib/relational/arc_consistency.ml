type t = {
  a : Structure.t;
  b : Structure.t;
  n : int;
  m : int;
  dom : bool array array;
  count : int array;
  occ : (string * Tuple.t) list array;
  brels : (string, Tuple.t array) Hashtbl.t;
  trail : (int * int) Stack.t;
  marks : int Stack.t;
  pending : int Queue.t;
  in_pending : bool array;
  mutable removals : int;
}

let create a b =
  let n = Structure.size a and m = Structure.size b in
  let occ = Array.make (max n 1) [] in
  Structure.iter_tuples
    (fun name t ->
      List.iter (fun x -> occ.(x) <- (name, t) :: occ.(x)) (Tuple.elements t))
    a;
  let brels = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      let tuples =
        match Structure.relation b name with
        | r -> Array.of_list (Relation.elements r)
        | exception Not_found -> [||]
      in
      Hashtbl.replace brels name tuples)
    (Vocabulary.symbols (Structure.vocabulary a));
  {
    a;
    b;
    n;
    m;
    dom = Array.init (max n 1) (fun _ -> Array.make (max m 1) (m > 0));
    count = Array.make (max n 1) m;
    occ;
    brels;
    trail = Stack.create ();
    marks = Stack.create ();
    pending = Queue.create ();
    in_pending = Array.make (max n 1) false;
    removals = 0;
  }

let source ctx = ctx.a

let target ctx = ctx.b

let dom_mem ctx x v = ctx.dom.(x).(v)

let dom_size ctx x = ctx.count.(x)

let dom_values ctx x =
  let acc = ref [] in
  for v = ctx.m - 1 downto 0 do
    if ctx.dom.(x).(v) then acc := v :: !acc
  done;
  !acc

let schedule ctx x =
  if not ctx.in_pending.(x) then begin
    ctx.in_pending.(x) <- true;
    Queue.add x ctx.pending
  end

let remove_value ctx x v =
  if ctx.dom.(x).(v) then begin
    ctx.dom.(x).(v) <- false;
    ctx.count.(x) <- ctx.count.(x) - 1;
    ctx.removals <- ctx.removals + 1;
    Stack.push (x, v) ctx.trail;
    schedule ctx x;
    ctx.count.(x) > 0
  end
  else true

(* Revise one tuple-constraint: recompute, per position, the set of target
   values supported by some target tuple compatible with all current domains,
   and prune unsupported values. *)
let revise ctx name (t : Tuple.t) =
  let arity = Array.length t in
  let tuples = try Hashtbl.find ctx.brels name with Not_found -> [||] in
  let supp = Array.init arity (fun _ -> Array.make (max ctx.m 1) false) in
  Array.iter
    (fun (tt : Tuple.t) ->
      let ok = ref true in
      (try
         for j = 0 to arity - 1 do
           if not ctx.dom.(t.(j)).(tt.(j)) then begin
             ok := false;
             raise Exit
           end
         done
       with Exit -> ());
      if !ok then
        for j = 0 to arity - 1 do
          supp.(j).(tt.(j)) <- true
        done)
    tuples;
  let alive = ref true in
  for j = 0 to arity - 1 do
    if !alive then
      for v = 0 to ctx.m - 1 do
        if !alive && ctx.dom.(t.(j)).(v) && not supp.(j).(v) then
          if not (remove_value ctx t.(j) v) then alive := false
      done
  done;
  !alive

let propagate ctx =
  let alive = ref true in
  while !alive && not (Queue.is_empty ctx.pending) do
    let x = Queue.pop ctx.pending in
    ctx.in_pending.(x) <- false;
    List.iter (fun (name, t) -> if !alive then alive := revise ctx name t) ctx.occ.(x)
  done;
  if not !alive then begin
    (* Drain so a later propagate starts clean after undo. *)
    Queue.iter (fun x -> ctx.in_pending.(x) <- false) ctx.pending;
    Queue.clear ctx.pending
  end;
  !alive

let establish ctx =
  if ctx.n = 0 then true
  else if ctx.m = 0 then false
  else begin
    for x = 0 to ctx.n - 1 do
      schedule ctx x
    done;
    propagate ctx
  end

let assign ctx x v =
  if not ctx.dom.(x).(v) then invalid_arg "Arc_consistency.assign: value not in domain";
  let alive = ref true in
  for w = 0 to ctx.m - 1 do
    if !alive && w <> v && ctx.dom.(x).(w) then
      if not (remove_value ctx x w) then alive := false
  done;
  !alive && propagate ctx

let push ctx = Stack.push (Stack.length ctx.trail) ctx.marks

let pop ctx =
  match Stack.pop_opt ctx.marks with
  | None -> invalid_arg "Arc_consistency.pop: no checkpoint"
  | Some mark ->
    while Stack.length ctx.trail > mark do
      let x, v = Stack.pop ctx.trail in
      ctx.dom.(x).(v) <- true;
      ctx.count.(x) <- ctx.count.(x) + 1
    done

let all_singleton ctx =
  let ok = ref true in
  for x = 0 to ctx.n - 1 do
    if ctx.count.(x) <> 1 then ok := false
  done;
  !ok

let solution ctx =
  if not (all_singleton ctx) then
    invalid_arg "Arc_consistency.solution: domains not all singleton";
  Array.init ctx.n (fun x ->
      let v = ref (-1) in
      for w = 0 to ctx.m - 1 do
        if ctx.dom.(x).(w) then v := w
      done;
      !v)

let removal_count ctx = ctx.removals
