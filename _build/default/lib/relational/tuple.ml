type t = int array

let compare (s : t) (t : t) =
  let ls = Array.length s and lt = Array.length t in
  if ls <> lt then Int.compare ls lt
  else
    let rec loop i =
      if i >= ls then 0
      else
        let c = Int.compare s.(i) t.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal (s : t) (t : t) = compare s t = 0

let hash (t : t) = Array.fold_left (fun acc x -> (acc * 31) + x + 1) (Array.length t) t

let arity = Array.length

let map = Array.map

let elements t =
  let seen = Hashtbl.create (Array.length t) in
  let acc = ref [] in
  Array.iter
    (fun x ->
      if not (Hashtbl.mem seen x) then begin
        Hashtbl.add seen x ();
        acc := x :: !acc
      end)
    t;
  List.rev !acc

let max_element t = Array.fold_left max (-1) t

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (Array.to_list t)

let to_string t = Format.asprintf "%a" pp t
