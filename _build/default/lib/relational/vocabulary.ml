type t = { symbols : (string * int) list; index : (string, int) Hashtbl.t }

let build symbols =
  let index = Hashtbl.create (List.length symbols) in
  List.iter
    (fun (name, arity) ->
      if arity < 0 then invalid_arg ("Vocabulary.create: negative arity for " ^ name);
      if Hashtbl.mem index name then
        invalid_arg ("Vocabulary.create: duplicate symbol " ^ name);
      Hashtbl.add index name arity)
    symbols;
  { symbols; index }

let create symbols = build symbols

let empty = build []

let symbols v = v.symbols

let names v = List.map fst v.symbols

let arity v name = Hashtbl.find v.index name

let mem v name = Hashtbl.mem v.index name

let size v = List.length v.symbols

let max_arity v = List.fold_left (fun acc (_, a) -> max acc a) 0 v.symbols

let add v name arity =
  if mem v name then invalid_arg ("Vocabulary.add: duplicate symbol " ^ name);
  build (v.symbols @ [ (name, arity) ])

let union v w =
  let extra =
    List.filter
      (fun (name, arity) ->
        match Hashtbl.find_opt v.index name with
        | None -> true
        | Some a ->
          if a <> arity then
            invalid_arg ("Vocabulary.union: arity conflict on " ^ name)
          else false)
      w.symbols
  in
  build (v.symbols @ extra)

let subset v w =
  List.for_all
    (fun (name, arity) ->
      match Hashtbl.find_opt w.index name with
      | Some a -> a = arity
      | None -> false)
    v.symbols

let equal v w = subset v w && subset w v

let pp ppf v =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (name, arity) -> Format.fprintf ppf "%s/%d" name arity))
    v.symbols
