lib/relational/arc_consistency.mli: Structure
