lib/relational/vocabulary.ml: Format Hashtbl List
