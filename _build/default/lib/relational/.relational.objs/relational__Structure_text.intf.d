lib/relational/structure_text.mli: Format Structure
