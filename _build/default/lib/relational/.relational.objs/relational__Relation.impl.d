lib/relational/relation.ml: Array Format Hashtbl Int List Printf Set Tuple
