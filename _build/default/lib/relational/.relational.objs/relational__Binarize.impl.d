lib/relational/binarize.ml: Array Fun Hashtbl List Printf Structure Vocabulary
