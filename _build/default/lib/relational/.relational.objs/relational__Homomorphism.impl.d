lib/relational/homomorphism.ml: Arc_consistency Array Fun Hashtbl List Relation Structure Tuple
