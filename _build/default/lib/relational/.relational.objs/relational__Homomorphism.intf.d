lib/relational/homomorphism.mli: Structure
