lib/relational/arc_consistency.ml: Array Hashtbl List Queue Relation Stack Structure Tuple Vocabulary
