lib/relational/vocabulary.mli: Format
