lib/relational/structure.ml: Array Format Fun Hashtbl List Map Printf Relation String Tuple Vocabulary
