lib/relational/binarize.mli: Structure Tuple Vocabulary
