lib/relational/sum.mli: Structure Vocabulary
