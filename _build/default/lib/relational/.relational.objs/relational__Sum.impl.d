lib/relational/sum.ml: Array Fun List Structure Vocabulary
