lib/relational/structure_text.ml: Array Buffer Format Hashtbl List Printf String Structure Vocabulary
