lib/relational/tuple.mli: Format
