exception Parse_error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Parse_error msg)) fmt

let tokens_of_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let int_of token what =
  match int_of_string_opt token with
  | Some v -> v
  | None -> fail "expected %s, got %S" what token

let parse text =
  let lines = String.split_on_char '\n' text in
  let parsed = List.filter_map (fun l ->
      match tokens_of_line l with [] -> None | ts -> Some ts) lines
  in
  match parsed with
  | [] -> fail "empty input (expected a 'size N' line)"
  | first :: rest ->
    let size =
      match first with
      | [ "size"; n ] -> int_of n "the universe size"
      | _ -> fail "the first line must be 'size N'"
    in
    let decls, facts =
      List.partition (fun ts -> match ts with "rel" :: _ -> true | _ -> false) rest
    in
    let arities = Hashtbl.create 8 in
    let declaration_order = ref [] in
    let declare name arity =
      match Hashtbl.find_opt arities name with
      | Some a when a <> arity -> fail "relation %s used with arities %d and %d" name a arity
      | Some _ -> ()
      | None ->
        Hashtbl.replace arities name arity;
        declaration_order := name :: !declaration_order
    in
    List.iter
      (fun ts ->
        match ts with
        | [ "rel"; name; arity ] -> declare name (int_of arity "an arity")
        | _ -> fail "malformed rel declaration")
      decls;
    let parsed_facts =
      List.map
        (fun ts ->
          match ts with
          | name :: args ->
            let tuple = Array.of_list (List.map (fun a -> int_of a "an element") args) in
            declare name (Array.length tuple);
            (name, tuple)
          | [] -> assert false)
        facts
    in
    let vocab =
      Vocabulary.create
        (List.rev_map (fun name -> (name, Hashtbl.find arities name)) !declaration_order)
    in
    List.fold_left
      (fun acc (name, tuple) ->
        match Structure.add_tuple acc name tuple with
        | s -> s
        | exception Invalid_argument msg -> fail "%s" msg)
      (Structure.create vocab ~size) parsed_facts

let print a =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer (Printf.sprintf "size %d\n" (Structure.size a));
  List.iter
    (fun (name, arity) -> Buffer.add_string buffer (Printf.sprintf "rel %s %d\n" name arity))
    (Vocabulary.symbols (Structure.vocabulary a));
  Structure.iter_tuples
    (fun name t ->
      Buffer.add_string buffer name;
      Array.iter (fun x -> Buffer.add_string buffer (Printf.sprintf " %d" x)) t;
      Buffer.add_char buffer '\n')
    a;
  Buffer.contents buffer

let pp ppf a = Format.pp_print_string ppf (print a)
