(** Finite relations: sets of tuples of a fixed arity. *)

type t

val empty : int -> t
(** [empty arity] is the empty relation of the given arity. *)

val of_list : int -> Tuple.t list -> t
(** @raise Invalid_argument if a tuple has the wrong arity. *)

val arity : t -> int

val cardinal : t -> int
(** Number of tuples. *)

val is_empty : t -> bool

val mem : t -> Tuple.t -> bool

val add : t -> Tuple.t -> t
(** @raise Invalid_argument on arity mismatch. *)

val remove : t -> Tuple.t -> t

val union : t -> t -> t
(** @raise Invalid_argument on arity mismatch. *)

val inter : t -> t -> t

val diff : t -> t -> t

val subset : t -> t -> bool

val equal : t -> t -> bool

val compare : t -> t -> int

val iter : (Tuple.t -> unit) -> t -> unit

val fold : (Tuple.t -> 'a -> 'a) -> t -> 'a -> 'a

val for_all : (Tuple.t -> bool) -> t -> bool

val exists : (Tuple.t -> bool) -> t -> bool

val filter : (Tuple.t -> bool) -> t -> t

val map : (Tuple.t -> Tuple.t) -> t -> t
(** Image of the relation under a tuple transformer; the transformer must
    preserve arity. @raise Invalid_argument otherwise. *)

val elements : t -> Tuple.t list
(** Tuples in increasing {!Tuple.compare} order. *)

val choose : t -> Tuple.t option
(** Some tuple, or [None] when empty. *)

val active_domain : t -> int list
(** Sorted list of distinct elements occurring in some tuple. *)

val pp : Format.formatter -> t -> unit
