(** Binary encoding of structures (Lemma 5.5).

    [binary(A)] is a structure over a vocabulary of binary relation symbols
    [E_{P,Q,i,j}] — one for each pair of relation symbols [P, Q] of the
    original vocabulary and each pair of argument positions [i] of [P] and
    [j] of [Q].  Its universe is the set of (relation, tuple) facts of [A],
    and [E_{P,Q,i,j}] holds of facts [(s, t)] when [s ∈ P], [t ∈ Q] and the
    [i]-th entry of [s] equals the [j]-th entry of [t].

    Lemma 5.5: there is a homomorphism [A -> B] iff there is one
    [binary(A) -> binary(B)].  The encoding drops all arities to 2, which
    makes treewidth-based restrictions meaningful for wide relations. *)

val vocabulary : Vocabulary.t -> Vocabulary.t
(** The binary vocabulary induced by an input vocabulary.  Depends only on
    the vocabulary, so [binary(A)] and [binary(B)] are comparable. *)

val symbol : string -> int -> string -> int -> string
(** [symbol p i q j] is the name of [E_{P,Q,i,j}]. *)

val encode : Structure.t -> Structure.t
(** [binary(A)]. *)

val encode_with_index : Structure.t -> Structure.t * (string * Tuple.t) array
(** Also returns, for each element of the encoded universe, the fact it
    stands for. *)

val encode_economical : Structure.t -> Structure.t
(** The paper's optimized encoding: instead of all coincidence pairs, store
    only a chain linking the successive occurrences of each element (plus
    the reflexive pairs), so that the reflexive-symmetric-transitive closure
    recovers every coincidence.  Fewer tuples means a sparser — often
    lower-treewidth — encoding.  Homomorphism existence is preserved when
    the {e source} is encoded economically and the {e target} with the full
    {!encode}. *)
