let left_name r = r ^ "1"

let right_name r = r ^ "2"

let d1 = "D1"

let d2 = "D2"

let vocabulary vocab =
  Vocabulary.create
    ([ (d1, 1); (d2, 1) ]
    @ List.concat_map
        (fun (name, arity) -> [ (left_name name, arity); (right_name name, arity) ])
        (Vocabulary.symbols vocab))

let encode a b =
  if not (Vocabulary.equal (Structure.vocabulary a) (Structure.vocabulary b)) then
    invalid_arg "Sum.encode: vocabulary mismatch";
  let na = Structure.size a in
  let base =
    Structure.create (vocabulary (Structure.vocabulary a)) ~size:(na + Structure.size b)
  in
  let with_d1 =
    List.fold_left (fun acc i -> Structure.add_tuple acc d1 [| i |]) base
      (List.init na Fun.id)
  in
  let with_d2 =
    List.fold_left
      (fun acc i -> Structure.add_tuple acc d2 [| na + i |])
      with_d1
      (List.init (Structure.size b) Fun.id)
  in
  let with_a =
    Structure.fold_tuples
      (fun name t acc -> Structure.add_tuple acc (left_name name) t)
      a with_d2
  in
  Structure.fold_tuples
    (fun name t acc ->
      Structure.add_tuple acc (right_name name) (Array.map (fun x -> x + na) t))
    b with_a
