module Tuple_set = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

type t = { arity : int; tuples : Tuple_set.t }

let empty arity =
  if arity < 0 then invalid_arg "Relation.empty: negative arity";
  { arity; tuples = Tuple_set.empty }

let check_arity r t =
  if Array.length t <> r.arity then
    invalid_arg
      (Printf.sprintf "Relation: tuple of arity %d in relation of arity %d"
         (Array.length t) r.arity)

let add r t =
  check_arity r t;
  { r with tuples = Tuple_set.add t r.tuples }

let of_list arity tuples = List.fold_left add (empty arity) tuples

let arity r = r.arity

let cardinal r = Tuple_set.cardinal r.tuples

let is_empty r = Tuple_set.is_empty r.tuples

let mem r t = Tuple_set.mem t r.tuples

let remove r t = { r with tuples = Tuple_set.remove t r.tuples }

let same_arity op r s =
  if r.arity <> s.arity then invalid_arg ("Relation." ^ op ^ ": arity mismatch")

let union r s =
  same_arity "union" r s;
  { r with tuples = Tuple_set.union r.tuples s.tuples }

let inter r s =
  same_arity "inter" r s;
  { r with tuples = Tuple_set.inter r.tuples s.tuples }

let diff r s =
  same_arity "diff" r s;
  { r with tuples = Tuple_set.diff r.tuples s.tuples }

let subset r s = r.arity = s.arity && Tuple_set.subset r.tuples s.tuples

let equal r s = r.arity = s.arity && Tuple_set.equal r.tuples s.tuples

let compare r s =
  let c = Int.compare r.arity s.arity in
  if c <> 0 then c else Tuple_set.compare r.tuples s.tuples

let iter f r = Tuple_set.iter f r.tuples

let fold f r init = Tuple_set.fold f r.tuples init

let for_all p r = Tuple_set.for_all p r.tuples

let exists p r = Tuple_set.exists p r.tuples

let filter p r = { r with tuples = Tuple_set.filter p r.tuples }

let map f r =
  fold
    (fun t acc ->
      let t' = f t in
      if Array.length t' <> r.arity then
        invalid_arg "Relation.map: transformer changed arity";
      add acc t')
    r (empty r.arity)

let elements r = Tuple_set.elements r.tuples

let choose r = Tuple_set.min_elt_opt r.tuples

let active_domain r =
  let seen = Hashtbl.create 16 in
  iter (fun t -> Array.iter (fun x -> Hashtbl.replace seen x ()) t) r;
  List.sort Int.compare (Hashtbl.fold (fun x () acc -> x :: acc) seen [])

let pp ppf r =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") Tuple.pp)
    (elements r)
