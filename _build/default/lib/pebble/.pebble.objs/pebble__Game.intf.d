lib/pebble/game.mli: Relational Structure
