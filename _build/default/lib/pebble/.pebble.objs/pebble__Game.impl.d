lib/pebble/game.ml: Array Hashtbl List Queue Relation Relational Structure
