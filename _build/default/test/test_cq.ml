open Relational
open Cq
open Helpers

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let q s = Parser.parse s

(* ------------------------------------------------------------------ *)
(* Parser and Query basics                                              *)
(* ------------------------------------------------------------------ *)

let parser_tests =
  [
    Alcotest.test_case "round trip through printer" `Quick (fun () ->
        let query = q "Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2)." in
        check "reparse equal" true (Query.equal query (q (Query.to_string query))));
    Alcotest.test_case "paper's example query parses" `Quick (fun () ->
        let query = q "Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2)." in
        check_int "arity" 2 (Query.arity query);
        check_int "atoms" 3 (Query.atom_count query);
        Alcotest.(check (list string))
          "vars" [ "X1"; "X2"; "Z1"; "Z2"; "Z3" ] (Query.variables query);
        Alcotest.(check (list string))
          "existential" [ "Z1"; "Z2"; "Z3" ] (Query.existential_variables query));
    Alcotest.test_case "boolean query without parens" `Quick (fun () ->
        let query = q "Q :- E(X, Y), E(Y, X)" in
        check_int "arity" 0 (Query.arity query);
        check "safe" true (Query.is_safe query));
    Alcotest.test_case "unsafe head variable detected" `Quick (fun () ->
        check "unsafe" false (Query.is_safe (q "Q(W) :- E(X, Y).")));
    Alcotest.test_case "arity conflicts rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (q "Q(X) :- P(X), P(X, X).");
             false
           with Parser.Parse_error _ -> true));
    Alcotest.test_case "reserved predicate rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (q "Q(X) :- __dist0(X).");
             false
           with Parser.Parse_error _ -> true));
    Alcotest.test_case "garbage rejected" `Quick (fun () ->
        check "none" true (Parser.parse_opt "Q(X) :- " = None);
        check "none2" true (Parser.parse_opt "Q(X) P(X)" = None);
        check "none3" true (Parser.parse_opt "Q(X) :- P(X). extra" = None));
    Alcotest.test_case "two-atom recognition" `Quick (fun () ->
        check "yes" true (Query.is_two_atom (q "Q(X) :- P(X, Y), P(Y, X), R(X, X)."));
        check "no" false (Query.is_two_atom (q "Q(X) :- P(X, Y), P(Y, Z), P(Z, X).")));
    Alcotest.test_case "norm counts variables and argument slots" `Quick (fun () ->
        check_int "norm" (3 + 4) (Query.norm (q "Q(X) :- P(X, Y), P(Y, Z).")));
  ]

(* ------------------------------------------------------------------ *)
(* Canonical databases                                                  *)
(* ------------------------------------------------------------------ *)

let canonical_tests =
  [
    Alcotest.test_case "canonical database of the paper's example" `Quick (fun () ->
        let query = q "Q(X1, X2) :- P(X1, Z1, Z2), R(Z2, Z3), R(Z3, X2)." in
        let db, index = Canonical.database query in
        check_int "5 elements" 5 (Structure.size db);
        check_int "3 body facts + 2 markers" 5 (Structure.total_tuples db);
        let e v = List.assoc v index in
        check "P fact" true (Structure.mem_tuple db "P" [| e "X1"; e "Z1"; e "Z2" |]);
        check "marker 0" true (Structure.mem_tuple db (Canonical.dist_pred 0) [| e "X1" |]);
        check "marker 1" true (Structure.mem_tuple db (Canonical.dist_pred 1) [| e "X2" |]));
    Alcotest.test_case "database_no_head has no markers" `Quick (fun () ->
        let db, _ = Canonical.database_no_head (q "Q(X) :- E(X, Y).") in
        check "no marker" false (Vocabulary.mem (Structure.vocabulary db) (Canonical.dist_pred 0)));
    Alcotest.test_case "boolean query of a structure" `Quick (fun () ->
        let bq = Canonical.boolean_query (path 3) in
        check_int "two atoms" 2 (Query.atom_count bq);
        check_int "boolean" 0 (Query.arity bq));
    Alcotest.test_case "to_query inverts database" `Quick (fun () ->
        let query = q "Q(X, Y) :- E(X, Z), E(Z, Y)." in
        let db, index = Canonical.database query in
        let names i = fst (List.find (fun (_, j) -> j = i) index) in
        let back = Canonical.to_query ~arity:2 ~names db in
        check "equal" true (Query.equal query back));
  ]

(* ------------------------------------------------------------------ *)
(* Containment                                                          *)
(* ------------------------------------------------------------------ *)

let containment_tests =
  [
    Alcotest.test_case "longer path query is contained in shorter" `Quick (fun () ->
        (* Q1: path of length 2 from X to Y; Q2: an outgoing edge from X. *)
        let q1 = q "Q(X) :- E(X, Z), E(Z, W)." in
        let q2 = q "Q(X) :- E(X, Z)." in
        check "q1 in q2" true (Containment.contained q1 q2);
        check "q2 not in q1" false (Containment.contained q2 q1));
    Alcotest.test_case "triangle implies cycle-walk queries" `Quick (fun () ->
        let tri = q "Q :- E(X, Y), E(Y, Z), E(Z, X)." in
        let hexa = q "Q :- E(A, B), E(B, C), E(C, D), E(D, E1), E(E1, F), E(F, A)." in
        (* A triangle contains a closed walk of length 6, so tri ⊆ hexa. *)
        check "tri in hexa" true (Containment.contained tri hexa);
        check "hexa not in tri" false (Containment.contained hexa tri));
    Alcotest.test_case "head order matters" `Quick (fun () ->
        let q1 = q "Q(X, Y) :- E(X, Y)." in
        let q2 = q "Q(Y, X) :- E(X, Y)." in
        check "not contained" false (Containment.contained q1 q2));
    Alcotest.test_case "redundant self-join is equivalent" `Quick (fun () ->
        let q1 = q "Q(X) :- E(X, Y)." in
        let q2 = q "Q(X) :- E(X, Y), E(X, Z)." in
        check "equivalent" true (Containment.equivalent q1 q2));
    Alcotest.test_case "arity mismatch rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Containment.contained (q "Q(X) :- E(X, X).") (q "Q :- E(X, X)."));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "witness is a correct variable mapping" `Quick (fun () ->
        let q1 = q "Q(X) :- E(X, Z), E(Z, W)." in
        let q2 = q "Q(X) :- E(X, Z)." in
        match Containment.containment_witness q1 q2 with
        | None -> Alcotest.fail "expected witness"
        | Some w ->
          Alcotest.(check string) "head fixed" "X" (List.assoc "X" w);
          Alcotest.(check string) "Z maps into q1" "Z" (List.assoc "Z" w));
    Alcotest.test_case "evaluation: outgoing-edge query on a path" `Quick (fun () ->
        let answers = Containment.evaluate (q "Q(X) :- E(X, Y).") (path 3) in
        check_int "two answers" 2 (List.length answers));
    Alcotest.test_case "evaluation: triangle query on cliques" `Quick (fun () ->
        let tri = q "Q :- E(X, Y), E(Y, Z), E(Z, X)." in
        check_int "K3 has triangle" 1 (List.length (Containment.evaluate tri (clique 3)));
        check_int "K2 has none" 0 (List.length (Containment.evaluate tri (clique 2))));
    Alcotest.test_case "hom A->B iff QB contained in QA" `Quick (fun () ->
        let qa = Canonical.boolean_query (undirected_cycle 5) in
        let qb = Canonical.boolean_query (clique 3) in
        (* C5 -> K3 exists, so Q_{K3} ⊆ Q_{C5}. *)
        check "contained" true (Containment.contained qb qa);
        check "reverse fails (K3 -> C5 has none)" false (Containment.contained qa qb));
  ]

(* ------------------------------------------------------------------ *)
(* Minimization                                                         *)
(* ------------------------------------------------------------------ *)

let minimize_tests =
  [
    Alcotest.test_case "redundant self-join removed" `Quick (fun () ->
        let query = q "Q(X) :- E(X, Y), E(X, Z)." in
        let m = Containment.minimize query in
        check_int "one atom" 1 (Query.atom_count m);
        check "equivalent" true (Containment.equivalent query m));
    Alcotest.test_case "already minimal query unchanged in size" `Quick (fun () ->
        let query = q "Q :- E(X, Y), E(Y, Z), E(Z, X)." in
        check_int "three atoms" 3 (Query.atom_count (Containment.minimize query)));
    Alcotest.test_case "chain folded into triangle" `Quick (fun () ->
        (* Body: triangle plus a walk around it; minimizes to the triangle. *)
        let query = q "Q :- E(X, Y), E(Y, Z), E(Z, X), E(X, B), E(B, C)." in
        let m = Containment.minimize query in
        check_int "three atoms" 3 (Query.atom_count m);
        check "equivalent" true (Containment.equivalent query m));
    Alcotest.test_case "head variables survive minimization" `Quick (fun () ->
        let query = q "Q(X, Y) :- E(X, Y), E(X, Z)." in
        let m = Containment.minimize query in
        check "equivalent" true (Containment.equivalent query m);
        Alcotest.(check (list string)) "head" [ "X"; "Y" ] (Array.to_list m.Query.head));
  ]

(* ------------------------------------------------------------------ *)
(* Two-atom containment (Proposition 3.6)                               *)
(* ------------------------------------------------------------------ *)

let two_atom_tests =
  [
    Alcotest.test_case "two-atom route agrees on simple cases" `Quick (fun () ->
        let q1 = q "Q(X) :- E(X, Z), E(Z, W)." in
        let q2 = q "Q(X) :- E(X, Z)." in
        check "contained" true (Containment.contained_two_atom q1 q2);
        check "reverse" false (Containment.contained_two_atom q2 q1));
    Alcotest.test_case "non-two-atom q1 rejected" `Quick (fun () ->
        let q1 = q "Q :- E(X, Y), E(Y, Z), E(Z, X)." in
        check "raises" true
          (try
             ignore (Containment.contained_two_atom q1 q1);
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Properties                                                           *)
(* ------------------------------------------------------------------ *)

(* Random conjunctive queries over a fixed small vocabulary. *)
let gen_query ?(max_atoms = 4) ?(max_vars = 4) ~head_arity () =
  QCheck.Gen.(
    let var = 0 -- (max_vars - 1) >|= Printf.sprintf "V%d" in
    let atom =
      let* which = 0 -- 1 in
      if which = 0 then
        let* x = var in
        let+ y = var in
        ("E", [ x; y ])
      else
        let+ x = var in
        ("P", [ x ])
    in
    let* body = list_size (1 -- max_atoms) atom in
    let+ head = list_repeat head_arity var in
    Query.make ~head body)

let arbitrary_query ?max_atoms ?max_vars ~head_arity () =
  QCheck.make
    ~print:Query.to_string
    (gen_query ?max_atoms ?max_vars ~head_arity ())

let arbitrary_query_pair =
  QCheck.make
    ~print:(fun (a, b) -> Query.to_string a ^ "  vs  " ^ Query.to_string b)
    QCheck.Gen.(
      let* arity = 0 -- 2 in
      let* a = gen_query ~head_arity:arity () in
      let+ b = gen_query ~head_arity:arity () in
      (a, b))

let property_tests =
  [
    qtest ~count:200 "containment agrees with evaluation characterization"
      arbitrary_query_pair
      (fun (q1, q2) ->
        Containment.contained q1 q2 = Containment.contained_via_evaluation q1 q2);
    qtest ~count:200 "containment is reflexive" (arbitrary_query ~head_arity:1 ())
      (fun query -> Containment.contained query query);
    qtest ~count:100 "containment is transitive on random triples"
      (QCheck.make
         QCheck.Gen.(
           let* a = gen_query ~head_arity:1 () in
           let* b = gen_query ~head_arity:1 () in
           let+ c = gen_query ~head_arity:1 () in
           (a, b, c)))
      (fun (a, b, c) ->
        (not (Containment.contained a b && Containment.contained b c))
        || Containment.contained a c);
    qtest ~count:200 "minimize yields an equivalent query with no more atoms"
      (arbitrary_query ~head_arity:1 ())
      (fun query ->
        let m = Containment.minimize query in
        Containment.equivalent query m && Query.atom_count m <= Query.atom_count query);
    qtest ~count:200 "minimized queries are cores (idempotent)"
      (arbitrary_query ~head_arity:1 ())
      (fun query ->
        let m = Containment.minimize query in
        Query.atom_count (Containment.minimize m) = Query.atom_count m);
    qtest ~count:200 "two-atom route agrees with Chandra-Merlin"
      (QCheck.make
         ~print:(fun (a, b) -> Query.to_string a ^ "  vs  " ^ Query.to_string b)
         QCheck.Gen.(
           let* arity = 0 -- 2 in
           let* a = gen_query ~max_atoms:3 ~head_arity:arity () in
           let+ b = gen_query ~head_arity:arity () in
           (a, b)))
      (fun (q1, q2) ->
        (not (Query.is_two_atom q1))
        || Containment.contained_two_atom q1 q2 = Containment.contained q1 q2);
    qtest ~count:100 "hom existence equals canonical-query containment"
      (arbitrary_pair ~max_size_a:3 ~max_size_b:3 ~max_tuples:3 ())
      (fun (a, b) ->
        let qa = Canonical.boolean_query a and qb = Canonical.boolean_query b in
        Homomorphism.exists a b = Containment.contained qb qa);
  ]


(* ------------------------------------------------------------------ *)
(* Unions of conjunctive queries                                        *)
(* ------------------------------------------------------------------ *)

let ucq_tests =
  [
    Alcotest.test_case "union evaluation" `Quick (fun () ->
        (* out-edges union in-edges over the path 0->1->2. *)
        let u = Ucq.make [ q "Q(X) :- E(X, Y)."; q "Q(X) :- E(Y, X)." ] in
        check_int "all three nodes" 3 (List.length (Ucq.evaluate u (path 3))));
    Alcotest.test_case "mismatched arities rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Ucq.make [ q "Q(X) :- E(X, X)."; q "Q :- E(X, X)." ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "Sagiv-Yannakakis containment" `Quick (fun () ->
        let walks = Ucq.make [ q "Q(X) :- E(X, Y)."; q "Q(X) :- E(X, Y), E(Y, Z)." ] in
        let single = Ucq.make [ q "Q(X) :- E(X, Y)." ] in
        check "both walks in single" true (Ucq.contained walks single);
        check "single in walks" true (Ucq.contained single walks);
        let incoming = Ucq.make [ q "Q(X) :- E(Y, X)." ] in
        check "not contained" false (Ucq.contained single incoming));
    Alcotest.test_case "minimize removes redundant disjuncts" `Quick (fun () ->
        let u =
          Ucq.make
            [ q "Q(X) :- E(X, Y), E(Y, Z)."; q "Q(X) :- E(X, Y)."; q "Q(X) :- E(X, Y), E(X, W)." ]
        in
        let m = Ucq.minimize u in
        check_int "single disjunct" 1 (Ucq.disjunct_count m);
        check "equivalent" true (Ucq.equivalent u m));
    qtest ~count:100 "containment implies answer inclusion"
      (QCheck.pair
         (QCheck.make
            QCheck.Gen.(
              let* a = gen_query ~head_arity:1 () in
              let* b = gen_query ~head_arity:1 () in
              let+ c = gen_query ~head_arity:1 () in
              (Ucq.make [ a ], Ucq.make [ b; c ])))
         (arbitrary_structure ~max_rels:2 ~max_arity:2 ~max_size:3 ~max_tuples:4 ()))
      (fun ((u1, u2), db) ->
        (not (Ucq.contained u1 u2))
        || List.for_all
             (fun t -> List.exists (Tuple.equal t) (Ucq.evaluate u2 db))
             (Ucq.evaluate u1 db));
    qtest ~count:60 "minimize preserves semantics on random unions"
      (QCheck.make
         QCheck.Gen.(
           let* a = gen_query ~head_arity:1 () in
           let+ b = gen_query ~head_arity:1 () in
           Ucq.make [ a; b ]))
      (fun u -> Ucq.equivalent u (Ucq.minimize u));
  ]


(* ------------------------------------------------------------------ *)
(* Constants (Prolog convention: lowercase = constant)                  *)
(* ------------------------------------------------------------------ *)

let constants_tests =
  [
    Alcotest.test_case "recognition" `Quick (fun () ->
        let query = q "Q(X) :- E(X, alice), E(alice, bob)." in
        Alcotest.(check (list string)) "constants" [ "alice"; "bob" ]
          (Constants.constants query);
        check "has" true (Constants.has_constants query);
        check "plain query has none" false (Constants.has_constants (q "Q(X) :- E(X, Y).")));
    Alcotest.test_case "constants block variable-style folding" `Quick (fun () ->
        (* Without constants: E(X,Y) contains E(X,c)-style queries; with the
           constants reading, the specific query is contained in the general
           one but not vice versa. *)
        let general = q "Q(X) :- E(X, Y)." in
        let specific = q "Q(X) :- E(X, c)." in
        check "specific in general" true (Constants.contained specific general);
        check "general not in specific" false (Constants.contained general specific));
    Alcotest.test_case "distinct constants do not unify" `Quick (fun () ->
        let q1 = q "Q :- E(a, b)." in
        let q2 = q "Q :- E(a, a)." in
        check "not contained" false (Constants.contained q1 q2);
        check "reverse not contained" false (Constants.contained q2 q1);
        check "duplicated atom equivalent" true
          (Constants.equivalent q1 (q "Q :- E(a, b), E(a, b)."));
        check "self" true (Constants.contained q1 q1));
    Alcotest.test_case "evaluation with bindings" `Quick (fun () ->
        (* Successors of node 0 on the path. *)
        let query = q "Q(X) :- E(start, X)." in
        let answers = Constants.evaluate query ~binding:[ ("start", 0) ] (path 4) in
        check_int "one answer" 1 (List.length answers);
        check "it is node 1" true (Tuple.equal (List.hd answers) [| 1 |]));
    Alcotest.test_case "unbound constants rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Constants.evaluate (q "Q(X) :- E(c, X).") ~binding:[] (path 3));
             false
           with Invalid_argument _ -> true));
    qtest ~count:100 "constants containment implies answer inclusion"
      (QCheck.pair
         (QCheck.make
            QCheck.Gen.(
              let term = oneofl [ "X"; "Y"; "c"; "d" ] in
              let atom =
                let* a = term in
                let+ b = term in
                ("E", [ a; b ])
              in
              let* b1 = list_size (1 -- 3) atom in
              let+ b2 = list_size (1 -- 3) atom in
              (Query.make ~head:[] b1, Query.make ~head:[] b2)))
         (arbitrary_structure ~max_rels:1 ~max_arity:2 ~max_size:3 ~max_tuples:4 ()))
      (fun ((q1, q2), db) ->
        (not (Constants.contained q1 q2))
        ||
        let binding = [ ("c", 0); ("d", min 1 (Structure.size db - 1)) ] in
        List.for_all
          (fun t -> List.exists (Tuple.equal t) (Constants.evaluate q2 ~binding db))
          (Constants.evaluate q1 ~binding db));
  ]


(* ------------------------------------------------------------------ *)
(* Yannakakis evaluation of acyclic queries                             *)
(* ------------------------------------------------------------------ *)

let acyclic_eval_tests =
  [
    Alcotest.test_case "recognition" `Quick (fun () ->
        check "chain acyclic" true (Acyclic.is_acyclic (q "Q(X) :- E(X, Y), E(Y, Z)."));
        check "triangle cyclic" false
          (Acyclic.is_acyclic (q "Q :- E(X, Y), E(Y, Z), E(Z, X).")));
    Alcotest.test_case "cyclic query rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Acyclic.evaluate (q "Q :- E(X, Y), E(Y, Z), E(Z, X).") (clique 3));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "two-step reachability on a path" `Quick (fun () ->
        let query = q "Q(X, Z) :- E(X, Y), E(Y, Z)." in
        let answers = Acyclic.evaluate query (path 4) in
        check_int "two pairs" 2 (List.length answers);
        check "0->2" true (List.exists (Tuple.equal [| 0; 2 |]) answers));
    Alcotest.test_case "repeated head variables" `Quick (fun () ->
        let query = q "Q(X, X) :- E(X, Y)." in
        let answers = Acyclic.evaluate query (path 3) in
        check "diagonal answers" true
          (List.for_all (fun t -> t.(0) = t.(1)) answers);
        check_int "two" 2 (List.length answers));
    Alcotest.test_case "free head variable ranges over the universe" `Quick (fun () ->
        let query = Query.make ~head:[ "W" ] [ ("E", [ "X"; "Y" ]) ] in
        check_int "3 answers on path3" 3
          (List.length (Acyclic.evaluate query (path 3))));
    qtest ~count:200 "agrees with generic evaluation on acyclic queries"
      (QCheck.pair
         (arbitrary_query ~head_arity:2 ())
         (arbitrary_structure ~max_rels:2 ~max_arity:2 ~max_size:3 ~max_tuples:4 ()))
      (fun (query, db) ->
        (not (Acyclic.is_acyclic query))
        ||
        let fast = Acyclic.evaluate query db in
        let slow = Containment.evaluate query db in
        fast = slow);
  ]


(* ------------------------------------------------------------------ *)
(* SPJ algebra                                                          *)
(* ------------------------------------------------------------------ *)

let algebra_tests =
  [
    Alcotest.test_case "scan, select, project by hand" `Quick (fun () ->
        (* Loops of the graph: select E(x,y) with x = y. *)
        let plan =
          Algebra.Project
            ([ "x" ], Algebra.Select ("x", "y", Algebra.Relation ("E", [| "x"; "y" |])))
        in
        let g = digraph ~size:3 [ (0, 0); (0, 1); (2, 2) ] in
        let t = Algebra.eval g plan in
        check_int "two loops" 2 (List.length t.Algebra.rows));
    Alcotest.test_case "natural join" `Quick (fun () ->
        let plan =
          Algebra.Join
            ( Algebra.Relation ("E", [| "x"; "y" |]),
              Algebra.Rename ([ ("x", "y"); ("y", "z") ], Algebra.Relation ("E", [| "x"; "y" |])) )
        in
        let t = Algebra.eval (path 4) plan in
        (* 2-walks on a path of 3 edges: 0-1-2 and 1-2-3. *)
        check_int "two walks" 2 (List.length t.Algebra.rows));
    Alcotest.test_case "rename collision rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore
               (Algebra.eval (path 2)
                  (Algebra.Rename ([ ("x", "y") ], Algebra.Relation ("E", [| "x"; "y" |]))));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "unknown column rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Algebra.eval (path 2) (Algebra.Project ([ "zz" ], Algebra.Relation ("E", [| "x"; "y" |]))));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "compiled plan for the paper's query shape" `Quick (fun () ->
        let query = q "Q(X1, X2) :- E(X1, Z), E(Z, X2)." in
        let answers = Algebra.evaluate_query query (directed_cycle 5) in
        check_int "five 2-walks on C5" 5 (List.length answers));
    Alcotest.test_case "unsafe queries rejected by the compiler" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Algebra.plan_of_query (q "Q(W) :- E(X, Y)."));
             false
           with Invalid_argument _ -> true));
    qtest ~count:200 "SPJ plans agree with homomorphism semantics"
      (QCheck.pair
         (arbitrary_query ~head_arity:2 ())
         (arbitrary_structure ~max_rels:2 ~max_arity:2 ~max_size:3 ~max_tuples:4 ()))
      (fun (query, db) ->
        (not (Query.is_safe query))
        || Algebra.evaluate_query query db = Containment.evaluate query db);
  ]

(* ------------------------------------------------------------------ *)
(* The chase                                                            *)
(* ------------------------------------------------------------------ *)

let chase_tests =
  let fk =
    (* Every employee works in some department: Emp(e) -> Works(e, d). *)
    Chase.tgd ~body:[ ("Emp", [ "E1" ]) ] ~head:[ ("Works", [ "E1"; "D" ]) ]
  in
  let dept_mgr =
    (* Every department someone works in has a manager who works there. *)
    Chase.tgd
      ~body:[ ("Works", [ "E1"; "D" ]) ]
      ~head:[ ("Mgr", [ "D"; "M" ]); ("Works", [ "M"; "D" ]) ]
  in
  [
    Alcotest.test_case "frontier and existentials" `Quick (fun () ->
        Alcotest.(check (list string)) "frontier" [ "E1" ] (Chase.frontier fk);
        Alcotest.(check (list string)) "existential" [ "D" ] (Chase.existentials fk));
    Alcotest.test_case "weak acyclicity" `Quick (fun () ->
        check "fk alone" true (Chase.is_weakly_acyclic [ fk ]);
        check "fk + manager" true (Chase.is_weakly_acyclic [ fk; dept_mgr ]);
        (* E(x,y) -> E(y,z): z is fresh in a recursive position: diverges. *)
        let diverging =
          Chase.tgd ~body:[ ("E", [ "X"; "Y" ]) ] ~head:[ ("E", [ "Y"; "Z" ]) ]
        in
        check "diverging" false (Chase.is_weakly_acyclic [ diverging ]));
    Alcotest.test_case "chase adds required facts with nulls" `Quick (fun () ->
        let v = Vocabulary.create [ ("Emp", 1); ("Works", 2); ("Mgr", 2) ] in
        let db = Structure.of_relations v ~size:1 [ ("Emp", [ [| 0 |] ]) ] in
        let chased = Chase.chase [ fk; dept_mgr ] db in
        check "works fact added" false
          (Relation.is_empty (Structure.relation chased "Works"));
        check "manager fact added" false
          (Relation.is_empty (Structure.relation chased "Mgr"));
        check "original element kept" true
          (Relation.mem (Structure.relation chased "Emp") [| 0 |]));
    Alcotest.test_case "chase is idempotent on satisfied databases" `Quick (fun () ->
        let v = Vocabulary.create [ ("Emp", 1); ("Works", 2) ] in
        let db =
          Structure.of_relations v ~size:2
            [ ("Emp", [ [| 0 |] ]); ("Works", [ [| 0; 1 |] ]) ]
        in
        let chased = Chase.chase [ fk ] db in
        check "unchanged" true (Structure.equal db chased));
    Alcotest.test_case "divergence detected" `Quick (fun () ->
        let diverging =
          Chase.tgd ~body:[ ("E", [ "X"; "Y" ]) ] ~head:[ ("E", [ "Y"; "Z" ]) ]
        in
        check "raises" true
          (try
             ignore (Chase.chase ~max_steps:50 [ diverging ] (path 2));
             false
           with Chase.Diverged -> true));
    Alcotest.test_case "containment under dependencies (textbook example)" `Quick (fun () ->
        (* Without the FK, employees need not work anywhere; with it, every
           employee is a worker. *)
        let q1 = q "Q(X) :- Emp(X)." in
        let q2 = q "Q(X) :- Works(X, D)." in
        check "not contained plainly" false (Containment.contained q1 q2);
        check "contained under fk" true (Chase.contained_under [ fk ] q1 q2);
        check "reverse still fails" false (Chase.contained_under [ fk ] q2 q1));
    Alcotest.test_case "transitivity dependency folds paths" `Quick (fun () ->
        let trans =
          Chase.tgd
            ~body:[ ("E", [ "X"; "Y" ]); ("E", [ "Y"; "Z" ]) ]
            ~head:[ ("E", [ "X"; "Z" ]) ]
        in
        check "weakly acyclic (no existentials)" true (Chase.is_weakly_acyclic [ trans ]);
        let q1 = q "Q(X, Z) :- E(X, Y), E(Y, Z)." in
        let q2 = q "Q(X, Z) :- E(X, Z)." in
        check "not plainly" false (Containment.contained q1 q2);
        check "under transitivity" true (Chase.contained_under [ trans ] q1 q2));
    qtest ~count:100 "no dependencies = plain containment"
      (QCheck.make
         ~print:(fun (a, b) -> Query.to_string a ^ "  vs  " ^ Query.to_string b)
         QCheck.Gen.(
           let* a = gen_query ~head_arity:1 () in
           let+ b = gen_query ~head_arity:1 () in
           (a, b)))
      (fun (q1, q2) ->
        Chase.contained_under [] q1 q2 = Containment.contained_via_evaluation q1 q2);
  ]

let () =
  Alcotest.run "cq"
    [
      ("parser", parser_tests);
      ("canonical", canonical_tests);
      ("containment", containment_tests);
      ("minimize", minimize_tests);
      ("two-atom", two_atom_tests);
      ("properties", property_tests);
      ("ucq", ucq_tests);
      ("constants", constants_tests);
      ("acyclic-eval", acyclic_eval_tests);
      ("algebra", algebra_tests);
      ("chase", chase_tests);
    ]
