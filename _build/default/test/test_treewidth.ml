open Relational
open Treewidth
open Helpers

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let cycle_graph n = Graph.of_edges ~size:n (List.init n (fun i -> (i, (i + 1) mod n)))

let path_graph n = Graph.of_edges ~size:n (List.init (n - 1) (fun i -> (i, i + 1)))

let grid_graph rows cols =
  let id r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~size:(rows * cols) !edges

(* ------------------------------------------------------------------ *)
(* Graph                                                                *)
(* ------------------------------------------------------------------ *)

let graph_tests =
  [
    Alcotest.test_case "edges and degrees" `Quick (fun () ->
        let g = cycle_graph 4 in
        check_int "4 edges" 4 (Graph.edge_count g);
        check_int "degree" 2 (Graph.degree g 0);
        check "mem" true (Graph.mem_edge g 0 1);
        check "not mem" false (Graph.mem_edge g 0 2));
    Alcotest.test_case "self-loops ignored" `Quick (fun () ->
        check_int "none" 0 (Graph.edge_count (Graph.of_edges ~size:2 [ (1, 1) ])));
    Alcotest.test_case "eliminate_vertex fills neighborhood" `Quick (fun () ->
        let g = path_graph 3 in
        let g' = Graph.eliminate_vertex g 1 in
        check "fill edge" true (Graph.mem_edge g' 0 2);
        check_int "vertex gone" 0 (Graph.degree g' 1));
    Alcotest.test_case "components" `Quick (fun () ->
        let g = Graph.of_edges ~size:5 [ (0, 1); (3, 4) ] in
        Alcotest.(check (list (list int)))
          "three components" [ [ 0; 1 ]; [ 2 ]; [ 3; 4 ] ] (Graph.components g));
    Alcotest.test_case "is_clique" `Quick (fun () ->
        check "K3" true (Graph.is_clique (Graph.complete 3) [ 0; 1; 2 ]);
        check "path not" false (Graph.is_clique (path_graph 3) [ 0; 1; 2 ]));
  ]

(* ------------------------------------------------------------------ *)
(* Treewidth                                                            *)
(* ------------------------------------------------------------------ *)

let treewidth_tests =
  [
    Alcotest.test_case "known exact treewidths" `Quick (fun () ->
        check_int "path" 1 (Elimination.treewidth_exact (path_graph 6));
        check_int "cycle" 2 (Elimination.treewidth_exact (cycle_graph 6));
        check_int "K5" 4 (Elimination.treewidth_exact (Graph.complete 5));
        check_int "edgeless" 0 (Elimination.treewidth_exact (Graph.create 4));
        check_int "2x4 grid" 2 (Elimination.treewidth_exact (grid_graph 2 4));
        check_int "3x3 grid" 3 (Elimination.treewidth_exact (grid_graph 3 3)));
    Alcotest.test_case "heuristics are upper bounds" `Quick (fun () ->
        List.iter
          (fun g ->
            let exact = Elimination.treewidth_exact g in
            check "min-degree >= exact" true
              (Elimination.width_of_order g (Elimination.min_degree_order g) >= exact);
            check "min-fill >= exact" true
              (Elimination.width_of_order g (Elimination.min_fill_order g) >= exact))
          [ path_graph 5; cycle_graph 7; grid_graph 3 3; Graph.complete 4 ]);
    Alcotest.test_case "heuristics are exact on simple families" `Quick (fun () ->
        check_int "cycle via min-fill" 2
          (Elimination.width_of_order (cycle_graph 8)
             (Elimination.min_fill_order (cycle_graph 8)));
        check_int "path via min-degree" 1
          (Elimination.width_of_order (path_graph 8)
             (Elimination.min_degree_order (path_graph 8))));
    Alcotest.test_case "decomposition validates" `Quick (fun () ->
        List.iter
          (fun g ->
            let td = Elimination.decomposition g in
            check "valid" true (Tree_decomposition.validate_graph g td))
          [ path_graph 6; cycle_graph 5; grid_graph 2 3; Graph.complete 4; Graph.create 3 ]);
    Alcotest.test_case "bad order rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Tree_decomposition.of_elimination_order (path_graph 3) [ 0; 1 ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "decomposition width equals order width" `Quick (fun () ->
        let g = grid_graph 2 4 in
        let order = Elimination.min_fill_order g in
        check_int "match"
          (Elimination.width_of_order g order)
          (Tree_decomposition.width (Tree_decomposition.of_elimination_order g order)));
    qtest ~count:100 "random decompositions are valid"
      (QCheck.make
         QCheck.Gen.(
           let* size = 1 -- 7 in
           let+ edges = list_size (0 -- 10) (pair (0 -- (size - 1)) (0 -- (size - 1))) in
           Graph.of_edges ~size edges))
      (fun g ->
        Tree_decomposition.validate_graph g
          (Elimination.decomposition ~heuristic:`Min_degree g)
        && Tree_decomposition.validate_graph g
             (Elimination.decomposition ~heuristic:`Min_fill g));
  ]

(* ------------------------------------------------------------------ *)
(* Td_solver (Theorem 5.4)                                              *)
(* ------------------------------------------------------------------ *)

let td_solver_tests =
  [
    Alcotest.test_case "2-colorability of cycles" `Quick (fun () ->
        check "C6 yes" true (Td_solver.exists (undirected_cycle 6) k2);
        check "C5 no" false (Td_solver.exists (undirected_cycle 5) k2);
        match Td_solver.solve (undirected_cycle 8) k2 with
        | Some h ->
          check "valid" true (Homomorphism.is_homomorphism (undirected_cycle 8) k2 h)
        | None -> Alcotest.fail "expected hom");
    Alcotest.test_case "structure decomposition covers wide tuples" `Quick (fun () ->
        let v = Vocabulary.create [ ("T", 3) ] in
        let s =
          Structure.of_relations v ~size:4 [ ("T", [ [| 0; 1; 2 |]; [| 1; 2; 3 |] ]) ]
        in
        let td = Td_solver.decompose s in
        check "valid" true (Tree_decomposition.validate_structure s td);
        check_int "width 2 (3-cliques in Gaifman graph)" 2 (Tree_decomposition.width td));
    Alcotest.test_case "stats report width" `Quick (fun () ->
        let _, stats = Td_solver.solve_with_stats (undirected_cycle 6) k2 in
        check_int "width 2" 2 stats.Td_solver.width);
    Alcotest.test_case "empty cases" `Quick (fun () ->
        let empty = Structure.create graph_vocab ~size:0 in
        check "empty source" true (Td_solver.exists empty k2);
        check "empty target" false (Td_solver.exists (path 2) empty));
    qtest ~count:250 "agrees with brute force" (arbitrary_pair ())
      (fun (a, b) -> Td_solver.exists a b = brute_force_exists a b);
    qtest ~count:150 "produced mappings are homomorphisms" (arbitrary_pair ())
      (fun (a, b) ->
        match Td_solver.solve a b with
        | None -> true
        | Some h -> Homomorphism.is_homomorphism a b h);
  ]

(* ------------------------------------------------------------------ *)
(* Acyclicity and Yannakakis                                            *)
(* ------------------------------------------------------------------ *)

let acyclic_tests =
  [
    Alcotest.test_case "paths are acyclic, triangles are not" `Quick (fun () ->
        check "path" true (Hypergraph.is_acyclic (path 5));
        check "triangle" false (Hypergraph.is_acyclic (undirected_cycle 3));
        check "C4" false (Hypergraph.is_acyclic (undirected_cycle 4)));
    Alcotest.test_case "a covering wide tuple restores acyclicity" `Quick (fun () ->
        (* Triangle edges plus a 3-ary fact covering all three vertices:
           alpha-acyclic. *)
        let v = Vocabulary.create [ ("E", 2); ("T", 3) ] in
        let s =
          Structure.of_relations v ~size:3
            [ ("E", [ [| 0; 1 |]; [| 1; 2 |]; [| 2; 0 |] ]); ("T", [ [| 0; 1; 2 |] ]) ]
        in
        check "acyclic" true (Hypergraph.is_acyclic s));
    Alcotest.test_case "join forest of a path chains up" `Quick (fun () ->
        match Hypergraph.join_forest (path 4) with
        | None -> Alcotest.fail "expected acyclic"
        | Some f ->
          check_int "three facts" 3 (Array.length f.Hypergraph.facts);
          check_int "one root" 1
            (Array.to_list f.Hypergraph.parent |> List.filter (fun p -> p < 0) |> List.length));
    Alcotest.test_case "yannakakis on paths" `Quick (fun () ->
        check "path into loop" true
          (Hypergraph.exists_acyclic (path 4) (digraph ~size:1 [ (0, 0) ]));
        check "path5 into path3 fails" false (Hypergraph.exists_acyclic (path 5) (path 3));
        check "path3 into path5" true (Hypergraph.exists_acyclic (path 3) (path 5)));
    Alcotest.test_case "cyclic source rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Hypergraph.solve_acyclic (undirected_cycle 3) k2);
             false
           with Invalid_argument _ -> true));
    qtest ~count:300 "yannakakis agrees with brute force on acyclic sources"
      (arbitrary_pair ~max_tuples:4 ())
      (fun (a, b) ->
        (not (Hypergraph.is_acyclic a))
        ||
        match Hypergraph.solve_acyclic a b with
        | Some h -> Homomorphism.is_homomorphism a b h && brute_force_exists a b
        | None -> not (brute_force_exists a b));
  ]


(* ------------------------------------------------------------------ *)
(* Incidence treewidth and query-decomposition solving                  *)
(* ------------------------------------------------------------------ *)

let incidence_tests =
  [
    Alcotest.test_case "wide tuple: Gaifman blows up, incidence does not" `Quick (fun () ->
        let v = Vocabulary.create [ ("T", 6) ] in
        let s = Structure.of_relations v ~size:6 [ ("T", [ [| 0; 1; 2; 3; 4; 5 |] ]) ] in
        let gaifman =
          Treewidth.Graph.of_edges ~size:6 (Structure.gaifman_edges s)
        in
        check_int "gaifman = clique" 5 (Treewidth.Elimination.treewidth_exact gaifman);
        check "incidence small" true (Treewidth.Incidence.treewidth_upper s <= 1));
    Alcotest.test_case "incidence graph shape" `Quick (fun () ->
        let g = Treewidth.Incidence.graph (path 3) in
        check_int "5 nodes" 5 (Treewidth.Graph.size g);
        check_int "4 edges" 4 (Treewidth.Graph.edge_count g));
    Alcotest.test_case "incidence solver handles wide relations" `Quick (fun () ->
        (* Two overlapping 4-ary facts mapped into a 4-ary target. *)
        let v = Vocabulary.create [ ("T", 4) ] in
        let a =
          Structure.of_relations v ~size:5
            [ ("T", [ [| 0; 1; 2; 3 |]; [| 1; 2; 3; 4 |] ]) ]
        in
        let b =
          Structure.of_relations v ~size:2
            [ ("T", [ [| 0; 1; 0; 1 |]; [| 1; 0; 1; 0 |] ]) ]
        in
        (match Treewidth.Incidence.solve a b with
        | Some h -> check "valid" true (Homomorphism.is_homomorphism a b h)
        | None -> Alcotest.fail "expected hom");
        let b_bad =
          Structure.of_relations v ~size:2 [ ("T", [ [| 0; 1; 0; 1 |] ]) ]
        in
        check "no hom" true (Treewidth.Incidence.solve a b_bad = None));
    qtest ~count:200 "incidence solver agrees with brute force" (arbitrary_pair ())
      (fun (a, b) ->
        match Treewidth.Incidence.solve a b with
        | Some h -> Homomorphism.is_homomorphism a b h && brute_force_exists a b
        | None -> not (brute_force_exists a b));
  ]

(* ------------------------------------------------------------------ *)
(* Counting homomorphisms                                               *)
(* ------------------------------------------------------------------ *)

let count_tests =
  [
    Alcotest.test_case "known counts" `Quick (fun () ->
        check_int "P2 -> K3" 6 (Treewidth.Td_solver.count (path 2) (clique 3));
        check_int "C3 endos" 3
          (Treewidth.Td_solver.count (directed_cycle 3) (directed_cycle 3));
        check_int "C5 -> K2" 0 (Treewidth.Td_solver.count (undirected_cycle 5) k2);
        check_int "C4 -> K2" 2 (Treewidth.Td_solver.count (undirected_cycle 4) k2));
    Alcotest.test_case "empty cases" `Quick (fun () ->
        let empty = Structure.create graph_vocab ~size:0 in
        check_int "empty source" 1 (Treewidth.Td_solver.count empty k2);
        check_int "empty target" 0 (Treewidth.Td_solver.count (path 2) empty));
    qtest ~count:200 "count agrees with enumeration"
      (arbitrary_pair ~max_size_a:4 ~max_size_b:3 ~max_tuples:4 ())
      (fun (a, b) -> Treewidth.Td_solver.count a b = Homomorphism.count a b);
  ]


(* ------------------------------------------------------------------ *)
(* Nice tree decompositions                                             *)
(* ------------------------------------------------------------------ *)

let ghw_tests =
  [
    Alcotest.test_case "single wide fact has ghw 1" `Quick (fun () ->
        let v = Vocabulary.create [ ("T", 5) ] in
        let s = Structure.of_relations v ~size:5 [ ("T", [ [| 0; 1; 2; 3; 4 |] ]) ] in
        Alcotest.(check int) "ghw" 1 (Hypergraph.generalized_hypertree_width_upper s));
    Alcotest.test_case "paths have ghw 1" `Quick (fun () ->
        Alcotest.(check int) "ghw" 1 (Hypergraph.generalized_hypertree_width_upper (path 6)));
    Alcotest.test_case "triangle needs 2" `Quick (fun () ->
        Alcotest.(check int) "ghw" 2
          (Hypergraph.generalized_hypertree_width_upper (undirected_cycle 3)));
    qtest ~count:100 "bounded by treewidth + 1"
      (arbitrary_structure ~max_size:5 ~max_tuples:5 ())
      (fun a ->
        let g = Graph.of_edges ~size:(Structure.size a) (Structure.gaifman_edges a) in
        let td = Elimination.decomposition g in
        Hypergraph.generalized_hypertree_width_upper a
        <= Tree_decomposition.width td + 1
        || Structure.size a = 0);
  ]

let nice_tests =
  [
    Alcotest.test_case "normalizing a cycle decomposition" `Quick (fun () ->
        let g = cycle_graph 6 in
        let nice = Nice_decomposition.of_decomposition (Elimination.decomposition g) in
        check "valid" true (Nice_decomposition.validate nice);
        check "covers" true (Nice_decomposition.covers nice g);
        check_int "width preserved" 2 (Nice_decomposition.width nice));
    Alcotest.test_case "root bag is empty and leaves exist" `Quick (fun () ->
        let g = grid_graph 2 3 in
        let nice = Nice_decomposition.of_decomposition (Elimination.decomposition g) in
        check "root empty" true
          (nice.Nice_decomposition.bags.(nice.Nice_decomposition.root) = []);
        check "has a leaf" true
          (Array.exists (fun n -> n = Nice_decomposition.Leaf) nice.Nice_decomposition.nodes));
    qtest ~count:100 "normalization preserves width and coverage"
      (QCheck.make
         QCheck.Gen.(
           let* size = 1 -- 7 in
           let+ edges = list_size (0 -- 10) (pair (0 -- (size - 1)) (0 -- (size - 1))) in
           Graph.of_edges ~size edges))
      (fun g ->
        let td = Elimination.decomposition g in
        let nice = Nice_decomposition.of_decomposition td in
        Nice_decomposition.validate nice
        && Nice_decomposition.covers nice g
        && Nice_decomposition.width nice = Tree_decomposition.width td);
  ]

let () =
  Alcotest.run "treewidth"
    [
      ("graph", graph_tests);
      ("treewidth", treewidth_tests);
      ("td-solver", td_solver_tests);
      ("acyclic", acyclic_tests);
      ("incidence", incidence_tests);
      ("counting", count_tests);
      ("nice", nice_tests);
      ("ghw", ghw_tests);
    ]
