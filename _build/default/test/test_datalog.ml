open Relational
open Datalog
open Helpers

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Program structure                                                    *)
(* ------------------------------------------------------------------ *)

let program_tests =
  [
    Alcotest.test_case "parse the paper's non-2-colorability program" `Quick (fun () ->
        let p = Programs.non_2_colorability in
        Alcotest.(check (list string)) "idbs" [ "P"; "Q" ] (Program.idb_predicates p);
        Alcotest.(check (list (pair string int))) "edbs" [ ("E", 2) ] (Program.edb_predicates p);
        check_int "width" 4 (Program.width p);
        check "4-datalog" true (Program.is_k_datalog 4 p);
        check "not 3-datalog" false (Program.is_k_datalog 3 p));
    Alcotest.test_case "arity conflicts rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Parser.parse ~goal:"Q" "Q(X) :- P(X). Q(X, Y) :- P(X).");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "goal must be an IDB" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Parser.parse ~goal:"E" "Q(X) :- E(X, X).");
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "comments and facts parse" `Quick (fun () ->
        let p = Parser.parse ~goal:"T" "% a fact\nT(X, X).\n" in
        check_int "one rule" 1 (List.length p.Program.rules));
    Alcotest.test_case "rule variable accounting" `Quick (fun () ->
        let p = Programs.same_generation in
        let r = List.nth p.Program.rules 2 in
        Alcotest.(check (list string)) "head vars" [ "X"; "Y" ] (Program.head_variables r);
        Alcotest.(check (list string))
          "body vars" [ "XP"; "X"; "YP"; "Y" ] (Program.body_variables r));
  ]

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

let eval_tests =
  [
    Alcotest.test_case "transitive closure of a path" `Quick (fun () ->
        let tc = Eval.goal_relation Programs.transitive_closure (path 5) in
        check_int "5*4/2 pairs" 10 (Relation.cardinal tc));
    Alcotest.test_case "transitive closure of a cycle is complete" `Quick (fun () ->
        let tc = Eval.goal_relation Programs.transitive_closure (directed_cycle 4) in
        check_int "all pairs incl. loops" 16 (Relation.cardinal tc));
    Alcotest.test_case "naive and semi-naive agree" `Quick (fun () ->
        List.iter
          (fun g ->
            let naive = Eval.fixpoint ~strategy:Eval.Naive Programs.transitive_closure g in
            let semi = Eval.fixpoint ~strategy:Eval.Seminaive Programs.transitive_closure g in
            List.iter2
              (fun (n1, r1) (n2, r2) ->
                Alcotest.(check string) "same idb" n1 n2;
                check "same relation" true (Relation.equal r1 r2))
              naive semi)
          [ path 6; directed_cycle 5; clique 4 ]);
    Alcotest.test_case "same generation on a small tree" `Quick (fun () ->
        (* Parent edges: 0->1, 0->2 (siblings 1,2); 1->3, 2->4 (cousins 3,4). *)
        let v = Vocabulary.create [ ("P", 2) ] in
        let tree =
          Structure.of_relations v ~size:5
            [ ("P", [ [| 0; 1 |]; [| 0; 2 |]; [| 1; 3 |]; [| 2; 4 |] ]) ]
        in
        let sg = Eval.goal_relation Programs.same_generation tree in
        check "siblings" true (Relation.mem sg [| 1; 2 |]);
        check "cousins" true (Relation.mem sg [| 3; 4 |]);
        check "not parent-child" false (Relation.mem sg [| 0; 1 |]));
    Alcotest.test_case "unsafe heads range over the universe" `Quick (fun () ->
        let p = Parser.parse ~goal:"T" "T(X, Y) :- E(X, X)." in
        (* One loop present: head Y is free, so 3 facts on a 3-element universe. *)
        let g = digraph ~size:3 [ (0, 0) ] in
        check_int "3 facts" 3 (Relation.cardinal (Eval.goal_relation p g)));
    Alcotest.test_case "empty-body rules fire unconditionally" `Quick (fun () ->
        let p = Parser.parse ~goal:"T" "T(X, X)." in
        let g = digraph ~size:4 [] in
        check_int "diagonal" 4 (Relation.cardinal (Eval.goal_relation p g)));
    Alcotest.test_case "missing EDB relation treated as empty" `Quick (fun () ->
        let p = Parser.parse ~goal:"T" "T(X) :- F(X, X)." in
        check "no facts" true (Relation.is_empty (Eval.goal_relation p (path 3))));
    Alcotest.test_case "stats count rounds" `Quick (fun () ->
        let _, stats =
          Eval.fixpoint_with_stats ~strategy:Eval.Seminaive Programs.transitive_closure (path 5)
        in
        check "at least 3 rounds" true (stats.Eval.rounds >= 3);
        check_int "derived = tc size" 10 stats.Eval.derived);
  ]

(* ------------------------------------------------------------------ *)
(* Non-2-colorability program                                           *)
(* ------------------------------------------------------------------ *)

let noncol_tests =
  [
    Alcotest.test_case "odd cycles detected" `Quick (fun () ->
        check "C5" true (Eval.goal_holds Programs.non_2_colorability (undirected_cycle 5));
        check "C3" true (Eval.goal_holds Programs.non_2_colorability (undirected_cycle 3)));
    Alcotest.test_case "even cycles and paths accepted" `Quick (fun () ->
        check "C6" false (Eval.goal_holds Programs.non_2_colorability (undirected_cycle 6));
        check "path" false
          (Eval.goal_holds Programs.non_2_colorability
             (undirected ~size:4 [ (0, 1); (1, 2); (2, 3) ])));
    qtest ~count:80 "agrees with homomorphism to K2"
      (QCheck.make
         ~print:(fun edges ->
           String.concat ";" (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges))
         QCheck.Gen.(
           let* size = 2 -- 6 in
           list_size (0 -- 8) (pair (0 -- (size - 1)) (0 -- (size - 1)))
           >|= List.filter (fun (u, v) -> u <> v)))
      (fun edges ->
        let size = 1 + List.fold_left (fun acc (u, v) -> max acc (max u v)) 0 edges in
        let g = undirected ~size edges in
        Eval.goal_holds Programs.non_2_colorability g = not (Homomorphism.exists g k2));
  ]

(* ------------------------------------------------------------------ *)
(* rho_B (Theorem 4.7(2))                                               *)
(* ------------------------------------------------------------------ *)

let rho_tests =
  [
    Alcotest.test_case "rho_B is k-Datalog" `Quick (fun () ->
        let p = Rho.build k2 ~k:2 in
        check "2-datalog" true (Program.is_k_datalog 2 p);
        let p3 = Rho.build k2 ~k:3 in
        check "3-datalog" true (Program.is_k_datalog 3 p3));
    Alcotest.test_case "rho_{K2} with 3 pebbles decides 2-colorability" `Quick (fun () ->
        check "C5: spoiler wins" true (Rho.spoiler_wins k2 ~k:3 (undirected_cycle 5));
        check "C6: duplicator survives" false (Rho.spoiler_wins k2 ~k:3 (undirected_cycle 6));
        check "C3: spoiler wins" true (Rho.spoiler_wins k2 ~k:3 (undirected_cycle 3)));
    Alcotest.test_case "2 pebbles are too weak for odd cycles" `Quick (fun () ->
        (* With k = 2 the Duplicator survives on every odd cycle even though
           no homomorphism exists: 2-consistency cannot see odd cycles,
           which is why Non-2-Colorability needs more variables. *)
        check "C5 survives k=2" false (Rho.spoiler_wins k2 ~k:2 (undirected_cycle 5));
        check "C3 survives k=2" false (Rho.spoiler_wins k2 ~k:2 (undirected_cycle 3)));
    qtest ~count:40 "rho_B agrees with the pebble game (k=2)"
      (arbitrary_pair ~max_rels:1 ~max_arity:2 ~max_size_a:4 ~max_size_b:2 ~max_tuples:4 ())
      (fun (a, b) ->
        Rho.spoiler_wins b ~k:2 a = Pebble.Game.spoiler_wins ~k:2 a b);
    qtest ~count:15 "rho_B agrees with the pebble game (k=3)"
      (arbitrary_pair ~max_rels:1 ~max_arity:2 ~max_size_a:3 ~max_size_b:2 ~max_tuples:4 ())
      (fun (a, b) ->
        Rho.spoiler_wins b ~k:3 a = Pebble.Game.spoiler_wins ~k:3 a b);
  ]


(* ------------------------------------------------------------------ *)
(* Remark 4.10(2): the Horn k-Datalog program                           *)
(* ------------------------------------------------------------------ *)

let horn_program_tests =
  [
    Alcotest.test_case "program shape for a small Horn target" `Quick (fun () ->
        let b =
          Structure.of_relations (Vocabulary.create [ ("R", 2) ]) ~size:2
            [ ("R", [ [| 0; 0 |]; [| 1; 0 |] ]) ]
        in
        let p = Horn_program.build b in
        check "k-datalog at k = arity" true (Program.is_k_datalog 2 p));
    Alcotest.test_case "non-Horn target rejected" `Quick (fun () ->
        let b =
          Structure.of_relations (Vocabulary.create [ ("R", 2) ]) ~size:2
            [ ("R", [ [| 0; 1 |]; [| 1; 0 |] ]) ]
        in
        check "raises" true
          (try
             ignore (Horn_program.build b);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "non-Boolean target rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Horn_program.build (clique 3));
             false
           with Invalid_argument _ -> true));
    qtest ~count:80 "agrees with the direct Horn algorithm and brute force"
      (QCheck.make
         QCheck.Gen.(
           let* b = gen_schaefer_structure Schaefer.Classify.Horn in
           let+ a = gen_source_for b ~max_size:4 ~max_tuples:4 in
           (a, b)))
      (fun (a, b) ->
        let datalog_no = Horn_program.no_homomorphism b a in
        let direct = Schaefer.Uniform.solve_horn_direct a b in
        datalog_no = (direct = None) && datalog_no = not (brute_force_exists a b));
  ]

let reachability_reference_tests =
  [
    qtest ~count:100 "transitive closure equals BFS reachability"
      (QCheck.make
         QCheck.Gen.(
           let* n = 1 -- 6 in
           let+ edges = list_size (0 -- 10) (pair (0 -- (n - 1)) (0 -- (n - 1))) in
           (n, edges)))
      (fun (n, edges) ->
        let g = digraph ~size:n edges in
        let tc = Eval.goal_relation Programs.transitive_closure g in
        (* BFS reference. *)
        let adj = Array.make n [] in
        List.iter (fun (u, v) -> adj.(u) <- v :: adj.(u)) edges;
        let reach u =
          let seen = Array.make n false in
          let queue = Queue.create () in
          List.iter (fun v -> if not seen.(v) then begin seen.(v) <- true; Queue.add v queue end) adj.(u);
          while not (Queue.is_empty queue) do
            let w = Queue.pop queue in
            List.iter
              (fun v -> if not seen.(v) then begin seen.(v) <- true; Queue.add v queue end)
              adj.(w)
          done;
          seen
        in
        let ok = ref true in
        for u = 0 to n - 1 do
          let seen = reach u in
          for v = 0 to n - 1 do
            if Relation.mem tc [| u; v |] <> seen.(v) then ok := false
          done
        done;
        !ok);
  ]

let () =
  Alcotest.run "datalog"
    [
      ("program", program_tests);
      ("eval", eval_tests);
      ("non-2-colorability", noncol_tests);
      ("rho", rho_tests);
      ("horn-program", horn_program_tests);
      ("reachability-reference", reachability_reference_tests);
    ]
