test/test_pebble.ml: Alcotest Array Game Helpers List Pebble QCheck Random Relational Schaefer Structure Vocabulary
