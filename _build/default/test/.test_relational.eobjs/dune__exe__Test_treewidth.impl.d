test/test_treewidth.ml: Alcotest Array Elimination Graph Helpers Homomorphism Hypergraph List Nice_decomposition QCheck Relational Structure Td_solver Tree_decomposition Treewidth Vocabulary
