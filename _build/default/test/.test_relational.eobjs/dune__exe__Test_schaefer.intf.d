test/test_schaefer.mli:
