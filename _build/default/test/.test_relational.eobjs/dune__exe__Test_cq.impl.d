test/test_cq.ml: Acyclic Alcotest Algebra Array Canonical Chase Constants Containment Cq Helpers Homomorphism List Parser Printf QCheck Query Relation Relational Structure Tuple Ucq Vocabulary
