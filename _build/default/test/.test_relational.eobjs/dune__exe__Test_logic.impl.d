test/test_logic.ml: Alcotest Array Datalog Fo_eval Fo_parser Folog Format Formula Game_sentence Helpers Lfp List Pebble QCheck Relation Relational Structure Translate Treewidth Vocabulary
