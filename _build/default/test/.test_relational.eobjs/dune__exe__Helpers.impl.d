test/helpers.ml: Alcotest Array Format Homomorphism Int List Printf QCheck QCheck_alcotest Random Relational Schaefer Structure Vocabulary
