test/test_core.ml: Alcotest Core Cq Csp Format Graph_dichotomy Helpers Homomorphism List QCheck Relational Schaefer Solver Structure Treewidth Workloads
