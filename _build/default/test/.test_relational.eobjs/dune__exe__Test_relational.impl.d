test/test_relational.ml: Alcotest Arc_consistency Array Binarize Format Helpers Homomorphism List Printf QCheck Relation Relational Structure Structure_text Sum Tuple Vocabulary
