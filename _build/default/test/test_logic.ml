open Relational
open Folog
open Helpers

let check = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let edge x y = Formula.Atom ("E", [| x; y |])

(* ------------------------------------------------------------------ *)
(* Formula basics                                                       *)
(* ------------------------------------------------------------------ *)

let formula_tests =
  [
    Alcotest.test_case "free variables and width" `Quick (fun () ->
        let f = Formula.Exists ("x", Formula.And [ edge "x" "y"; edge "y" "z" ]) in
        Alcotest.(check (list string)) "free" [ "y"; "z" ] (Formula.free_variables f);
        check_int "width 3" 3 (Formula.width f);
        check "not sentence" false (Formula.is_sentence f));
    Alcotest.test_case "variable reuse keeps width low" `Quick (fun () ->
        (* exists x y. E(x,y) & exists x. E(y,x) uses 2 names. *)
        let f =
          Formula.Exists
            ("x", Formula.Exists ("y", Formula.And [ edge "x" "y"; Formula.Exists ("x", edge "y" "x") ]))
        in
        check_int "width 2" 2 (Formula.width f);
        check "sentence" true (Formula.is_sentence f);
        check "existential positive" true (Formula.is_existential_positive f));
    Alcotest.test_case "fragment checks" `Quick (fun () ->
        check "negation not EP" false
          (Formula.is_existential_positive (Formula.Not (edge "x" "y")));
        check "forall not EP" false
          (Formula.is_existential_positive (Formula.Forall ("x", edge "x" "x"))));
    Alcotest.test_case "conj simplifies" `Quick (fun () ->
        check "true unit" true (Formula.conj [] = Formula.True);
        check "false wins" true
          (Formula.conj [ edge "x" "y"; Formula.False ] = Formula.False);
        check "singleton" true (Formula.conj [ edge "x" "y" ] = edge "x" "y"));
  ]

(* ------------------------------------------------------------------ *)
(* Evaluation                                                           *)
(* ------------------------------------------------------------------ *)

let eval_tests =
  [
    Alcotest.test_case "atom evaluation" `Quick (fun () ->
        let t = Fo_eval.eval (path 3) (edge "x" "y") in
        check_int "2 rows" 2 (List.length t.Fo_eval.rows));
    Alcotest.test_case "repeated variables select loops" `Quick (fun () ->
        check_int "no loops on path" 0
          (Fo_eval.satisfying_count (path 3) (edge "x" "x"));
        check_int "one loop" 1
          (Fo_eval.satisfying_count (digraph ~size:2 [ (0, 0); (0, 1) ]) (edge "x" "x")));
    Alcotest.test_case "exists and conjunction: 2-walks" `Quick (fun () ->
        (* Pairs joined by a directed walk of length 2 on the path 0->1->2. *)
        let f = Formula.Exists ("z", Formula.And [ edge "x" "z"; edge "z" "y" ]) in
        check_int "one pair" 1 (Fo_eval.satisfying_count (path 3) f));
    Alcotest.test_case "negation" `Quick (fun () ->
        let f = Formula.Not (edge "x" "y") in
        (* 9 pairs minus 2 edges. *)
        check_int "7 rows" 7 (Fo_eval.satisfying_count (path 3) f));
    Alcotest.test_case "forall" `Quick (fun () ->
        (* Every node has an out-edge: true on cycles, false on paths. *)
        let f = Formula.Forall ("x", Formula.Exists ("y", edge "x" "y")) in
        check "cycle" true (Fo_eval.holds (directed_cycle 4) f);
        check "path" false (Fo_eval.holds (path 4) f));
    Alcotest.test_case "disjunction with different free variables" `Quick (fun () ->
        let f = Formula.Or [ edge "x" "y"; edge "y" "x" ] in
        (* Path 0->1->2: symmetric closure has 4 pairs. *)
        check_int "4 rows" 4 (Fo_eval.satisfying_count (path 3) f));
    Alcotest.test_case "equality" `Quick (fun () ->
        check_int "diagonal" 3 (Fo_eval.satisfying_count (path 3) (Formula.Equal ("x", "y")));
        check_int "trivial" 3 (Fo_eval.satisfying_count (path 3) (Formula.Equal ("x", "x"))));
    Alcotest.test_case "sentences over the empty structure" `Quick (fun () ->
        let empty = Structure.create graph_vocab ~size:0 in
        check "exists fails" false
          (Fo_eval.holds empty (Formula.Exists ("x", Formula.True)));
        check "forall holds" true
          (Fo_eval.holds empty (Formula.Forall ("x", Formula.False))));
    Alcotest.test_case "free variables rejected in holds" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Fo_eval.holds (path 2) (edge "x" "y"));
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Lemma 5.2 translation                                                *)
(* ------------------------------------------------------------------ *)

let translate_tests =
  [
    Alcotest.test_case "path sentence uses 2 variables" `Quick (fun () ->
        let f = Translate.sentence_of_structure (path 5) in
        check "sentence" true (Formula.is_sentence f);
        check "existential positive" true (Formula.is_existential_positive f);
        check "width <= 2" true (Formula.width f <= 2));
    Alcotest.test_case "cycle sentence uses 3 variables" `Quick (fun () ->
        let f = Translate.sentence_of_structure (undirected_cycle 5) in
        check "width <= 3" true (Formula.width f <= 3));
    Alcotest.test_case "holds_via_fo decides 2-colorability" `Quick (fun () ->
        check "C6" true (Translate.holds_via_fo (undirected_cycle 6) k2);
        check "C5" false (Translate.holds_via_fo (undirected_cycle 5) k2);
        check "C7" false (Translate.holds_via_fo (undirected_cycle 7) k2));
    Alcotest.test_case "invalid decomposition rejected" `Quick (fun () ->
        let td =
          { Treewidth.Tree_decomposition.bags = [| [ 0 ] |]; tree_edges = [] }
        in
        check "raises" true
          (try
             ignore (Translate.sentence_of_structure ~decomposition:td (path 3));
             false
           with Invalid_argument _ -> true));
    qtest ~count:150 "translation agrees with brute force"
      (arbitrary_pair ~max_size_a:4 ~max_size_b:3 ~max_tuples:4 ())
      (fun (a, b) -> Translate.holds_via_fo a b = brute_force_exists a b);
    qtest ~count:100 "translation agrees with the treewidth DP"
      (arbitrary_pair ~max_size_a:4 ~max_size_b:3 ~max_tuples:4 ())
      (fun (a, b) -> Translate.holds_via_fo a b = Treewidth.Td_solver.exists a b);
    qtest ~count:100 "width bound of Lemma 5.2"
      (arbitrary_structure ~max_size:5 ~max_tuples:5 ())
      (fun a ->
        let td = Treewidth.Td_solver.decompose a in
        let f = Translate.sentence_of_structure ~decomposition:td a in
        Formula.is_existential_positive f
        && Formula.width f <= Treewidth.Tree_decomposition.width td + 1);
  ]


(* ------------------------------------------------------------------ *)
(* Least fixed-point logic                                              *)
(* ------------------------------------------------------------------ *)

let lfp_tests =
  [
    Alcotest.test_case "transitive closure as an LFP system" `Quick (fun () ->
        let tc =
          Lfp.make
            [
              {
                Lfp.name = "TC";
                vars = [| "x"; "y" |];
                body =
                  Formula.Or
                    [
                      edge "x" "y";
                      Formula.Exists
                        ("z", Formula.And [ Formula.Atom ("TC", [| "x"; "z" |]); edge "z" "y" ]);
                    ];
              };
            ]
        in
        let result = List.assoc "TC" (Lfp.fixpoint (path 4) tc) in
        check_int "6 pairs" 6 (Relation.cardinal result);
        let datalog =
          Datalog.Eval.goal_relation Datalog.Programs.transitive_closure (path 4)
        in
        check "matches datalog" true (Relation.equal result datalog));
    Alcotest.test_case "stages are counted" `Quick (fun () ->
        let tc =
          Lfp.make
            [
              {
                Lfp.name = "T";
                vars = [| "x"; "y" |];
                body =
                  Formula.Or
                    [
                      edge "x" "y";
                      Formula.Exists
                        ("z", Formula.And [ Formula.Atom ("T", [| "x"; "z" |]); edge "z" "y" ]);
                    ];
              };
            ]
        in
        let _, stats = Lfp.fixpoint_with_stats (path 6) tc in
        check "at least 4 stages" true (stats.Lfp.stages >= 4));
    Alcotest.test_case "negative occurrences rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore
               (Lfp.make
                  [
                    {
                      Lfp.name = "T";
                      vars = [| "x" |];
                      body = Formula.Not (Formula.Atom ("T", [| "x" |]));
                    };
                  ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "stray free variables rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore (Lfp.make [ { Lfp.name = "T"; vars = [| "x" |]; body = edge "x" "y" } ]);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "duplicate names rejected" `Quick (fun () ->
        check "raises" true
          (try
             ignore
               (Lfp.make
                  [
                    { Lfp.name = "T"; vars = [| "x" |]; body = Formula.True };
                    { Lfp.name = "T"; vars = [| "x" |]; body = Formula.True };
                  ]);
             false
           with Invalid_argument _ -> true));
  ]

(* ------------------------------------------------------------------ *)
(* Theorem 4.7(1): the LFP game sentence                                *)
(* ------------------------------------------------------------------ *)

let game_sentence_tests =
  [
    Alcotest.test_case "odd vs even cycles at k=3" `Quick (fun () ->
        check "C5 spoiler" true (Game_sentence.spoiler_wins ~k:3 (undirected_cycle 5) k2);
        check "C4 duplicator" false (Game_sentence.spoiler_wins ~k:3 (undirected_cycle 4) k2));
    Alcotest.test_case "2 pebbles stay too weak" `Quick (fun () ->
        check "C5 duplicator at k=2" false
          (Game_sentence.spoiler_wins ~k:2 (undirected_cycle 5) k2));
    Alcotest.test_case "empty target" `Quick (fun () ->
        let empty = Structure.create graph_vocab ~size:0 in
        check "spoiler" true (Game_sentence.spoiler_wins ~k:2 (path 2) empty));
    qtest ~count:25 "LFP sentence agrees with the combinatorial game (k=2)"
      (arbitrary_pair ~max_rels:1 ~max_arity:2 ~max_size_a:3 ~max_size_b:2 ~max_tuples:4 ())
      (fun (a, b) ->
        Game_sentence.spoiler_wins ~k:2 a b = Pebble.Game.spoiler_wins ~k:2 a b);
  ]


(* ------------------------------------------------------------------ *)
(* FO parser                                                            *)
(* ------------------------------------------------------------------ *)

let parser_tests =
  [
    Alcotest.test_case "parse a quantified formula" `Quick (fun () ->
        let f = Fo_parser.parse "exists x. exists y. E(x, y) & ~(x = y)" in
        check "sentence" true (Formula.is_sentence f);
        check "holds on path" true (Fo_eval.holds (path 3) f));
    Alcotest.test_case "precedence: & binds tighter than |" `Quick (fun () ->
        let f = Fo_parser.parse "false & false | true" in
        check "true" true (Fo_eval.holds (path 2) f));
    Alcotest.test_case "quantifier scope extends right" `Quick (fun () ->
        let f = Fo_parser.parse "forall x. E(x, x) | true" in
        (* forall x. (E(x,x) | true) is valid. *)
        check "valid" true (Fo_eval.holds (path 3) f));
    Alcotest.test_case "errors rejected" `Quick (fun () ->
        check "dangling" true (Fo_parser.parse_opt "E(x," = None);
        check "empty" true (Fo_parser.parse_opt "" = None);
        check "trailing" true (Fo_parser.parse_opt "true true" = None));
    Alcotest.test_case "round trip through printer" `Quick (fun () ->
        let f = Fo_parser.parse "exists x. (E(x, x) | ~(exists y. E(x, y)))" in
        let printed = Format.asprintf "%a" Formula.pp f in
        match Fo_parser.parse_opt printed with
        | Some g -> check "same truth" true (Fo_eval.holds (directed_cycle 3) f = Fo_eval.holds (directed_cycle 3) g)
        | None -> Alcotest.fail ("printer output unparseable: " ^ printed));
  ]

(* ------------------------------------------------------------------ *)
(* Reference semantics: assignment-by-assignment evaluation             *)
(* ------------------------------------------------------------------ *)

let rec naive_eval structure env (f : Formula.t) =
  let value v =
    match List.assoc_opt v env with
    | Some e -> e
    | None -> invalid_arg ("naive_eval: unbound variable " ^ v)
  in
  match f with
  | Formula.True -> true
  | Formula.False -> false
  | Formula.Atom (r, args) -> (
    match Structure.relation structure r with
    | rel -> Relation.mem rel (Array.map value args)
    | exception Not_found -> false)
  | Formula.Equal (x, y) -> value x = value y
  | Formula.Not g -> not (naive_eval structure env g)
  | Formula.And gs -> List.for_all (naive_eval structure env) gs
  | Formula.Or gs -> List.exists (naive_eval structure env) gs
  | Formula.Exists (x, g) ->
    List.exists
      (fun e -> naive_eval structure ((x, e) :: env) g)
      (Structure.universe structure)
  | Formula.Forall (x, g) ->
    List.for_all
      (fun e -> naive_eval structure ((x, e) :: env) g)
      (Structure.universe structure)

let gen_formula =
  QCheck.Gen.(
    let var = oneofl [ "x"; "y"; "z" ] in
    let atom =
      oneof
        [
          (let* a = var in
           let+ b = var in
           Formula.Atom ("E", [| a; b |]));
          (var >|= fun a -> Formula.Atom ("P", [| a |]));
          (let* a = var in
           let+ b = var in
           Formula.Equal (a, b));
          return Formula.True;
          return Formula.False;
        ]
    in
    let rec formula depth =
      if depth = 0 then atom
      else
        oneof
          [
            atom;
            (formula (depth - 1) >|= fun f -> Formula.Not f);
            (let* f = formula (depth - 1) in
             let+ g = formula (depth - 1) in
             Formula.And [ f; g ]);
            (let* f = formula (depth - 1) in
             let+ g = formula (depth - 1) in
             Formula.Or [ f; g ]);
            (let* v = var in
             let+ f = formula (depth - 1) in
             Formula.Exists (v, f));
            (let* v = var in
             let+ f = formula (depth - 1) in
             Formula.Forall (v, f));
          ]
    in
    let* f = formula 4 in
    (* Close the formula. *)
    return (List.fold_left (fun acc v -> Formula.Exists (v, acc)) f (Formula.free_variables f)))

let fo_vocab = Vocabulary.create [ ("E", 2); ("P", 1) ]

let gen_fo_structure =
  QCheck.Gen.(
    let* size = 1 -- 3 in
    let* edges = list_size (0 -- 5) (pair (0 -- (size - 1)) (0 -- (size - 1))) in
    let+ points = list_size (0 -- 2) (0 -- (size - 1)) in
    Structure.of_relations fo_vocab ~size
      [
        ("E", List.map (fun (u, v) -> [| u; v |]) edges);
        ("P", List.map (fun u -> [| u |]) points);
      ])

let reference_tests =
  [
    qtest ~count:400 "table evaluation matches assignment semantics"
      (QCheck.make
         ~print:(fun (f, s) ->
           Format.asprintf "%a@.on@.%a" Formula.pp f Structure.pp s)
         QCheck.Gen.(
           let* f = gen_formula in
           let+ s = gen_fo_structure in
           (f, s)))
      (fun (f, s) ->
        (* The generator closes formulas, but closing binds in free-var
           order; tolerate leftover frees by skipping them. *)
        if not (Formula.is_sentence f) then true
        else Fo_eval.holds s f = naive_eval s [] f);
  ]

let () =
  Alcotest.run "folog"
    [
      ("formula", formula_tests);
      ("eval", eval_tests);
      ("translate", translate_tests);
      ("lfp", lfp_tests);
      ("game-sentence", game_sentence_tests);
      ("fo-parser", parser_tests);
      ("reference-semantics", reference_tests);
    ]
