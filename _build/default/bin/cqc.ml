(* cqc: a command-line front end to the library.

     cqc contain 'Q(X) :- E(X,Y), E(Y,Z).' 'Q(X) :- E(X,Y).'
     cqc minimize 'Q(X) :- E(X,Y), E(X,Z).'
     cqc evaluate 'Q(X,Y) :- E(X,Z), E(Z,Y).' graph.st
     cqc solve source.st target.st
     cqc classify target.st
     cqc treewidth source.st

   Structures are given in the Structure_text format (see --help). *)

open Cmdliner

let read_structure path =
  let text =
    if path = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text path In_channel.input_all
  in
  Relational.Structure_text.parse text

let query_conv =
  let parse s =
    match Cq.Parser.parse s with
    | q -> Ok q
    | exception Cq.Parser.Parse_error msg -> Error (`Msg ("bad query: " ^ msg))
  in
  Arg.conv (parse, Cq.Query.pp)

let structure_conv =
  let parse path =
    match read_structure path with
    | s -> Ok s
    | exception Relational.Structure_text.Parse_error msg ->
      Error (`Msg (Printf.sprintf "%s: %s" path msg))
    | exception Sys_error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf s -> Relational.Structure.pp ppf s)

(* ------------------------------------------------------------------ *)

let contain q1 q2 =
  let yes, route = Core.Solver.solve_containment q1 q2 in
  Format.printf "Q1 <= Q2: %b  (route: %s)@." yes (Core.Solver.route_name route);
  if yes then
    match Cq.Containment.containment_witness q1 q2 with
    | Some w ->
      Format.printf "witness: %a@."
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (v, x) -> Format.fprintf ppf "%s->%s" v x))
        w
    | None -> ()

let contain_cmd =
  let q1 = Arg.(required & pos 0 (some query_conv) None & info [] ~docv:"Q1") in
  let q2 = Arg.(required & pos 1 (some query_conv) None & info [] ~docv:"Q2") in
  Cmd.v
    (Cmd.info "contain" ~doc:"Decide conjunctive-query containment Q1 <= Q2")
    Term.(const contain $ q1 $ q2)

let minimize q =
  let m = Cq.Containment.minimize q in
  Format.printf "%a@." Cq.Query.pp m;
  Format.printf "joins removed: %d@." (Cq.Query.atom_count q - Cq.Query.atom_count m)

let minimize_cmd =
  let q = Arg.(required & pos 0 (some query_conv) None & info [] ~docv:"Q") in
  Cmd.v
    (Cmd.info "minimize" ~doc:"Minimize a conjunctive query (compute its core)")
    Term.(const minimize $ q)

let evaluate engine q db =
  let answers =
    match engine with
    | `Hom -> Cq.Containment.evaluate q db
    | `Spj -> Cq.Algebra.evaluate_query q db
    | `Yannakakis -> Cq.Acyclic.evaluate q db
    | `Auto ->
      if Cq.Acyclic.is_acyclic q then Cq.Acyclic.evaluate q db
      else Cq.Containment.evaluate q db
  in
  Format.printf "%d answer(s)@." (List.length answers);
  List.iter (fun t -> Format.printf "  %a@." Relational.Tuple.pp t) answers

let evaluate_cmd =
  let engine =
    Arg.(
      value
      & opt
          (enum [ ("auto", `Auto); ("hom", `Hom); ("spj", `Spj); ("yannakakis", `Yannakakis) ])
          `Auto
      & info [ "engine" ] ~docv:"ENGINE"
          ~doc:
            "Evaluation engine: auto (Yannakakis when acyclic), hom              (homomorphism enumeration), spj (compiled algebra plan),              yannakakis.")
  in
  let q = Arg.(required & pos 0 (some query_conv) None & info [] ~docv:"Q") in
  let db = Arg.(required & pos 1 (some structure_conv) None & info [] ~docv:"DB") in
  Cmd.v
    (Cmd.info "evaluate" ~doc:"Evaluate a conjunctive query on a structure")
    Term.(const evaluate $ engine $ q $ db)

let solve a b =
  let r = Core.Solver.solve a b in
  Format.printf "route: %s@." (Core.Solver.route_name r.Core.Solver.route);
  match r.Core.Solver.answer with
  | Some h -> Format.printf "homomorphism: %a@." Relational.Tuple.pp h
  | None -> Format.printf "no homomorphism@."

let solve_cmd =
  let a = Arg.(required & pos 0 (some structure_conv) None & info [] ~docv:"SOURCE") in
  let b = Arg.(required & pos 1 (some structure_conv) None & info [] ~docv:"TARGET") in
  Cmd.v
    (Cmd.info "solve"
       ~doc:"Decide the existence of a homomorphism SOURCE -> TARGET (CSP)")
    Term.(const solve $ a $ b)

let classify b =
  if Relational.Structure.size b <> 2 then
    Format.printf "not a Boolean structure (universe size %d)@."
      (Relational.Structure.size b)
  else begin
    let classes = Schaefer.Classify.structure_classes b in
    (match classes with
    | [] ->
      Format.printf "Schaefer classes: none@.";
      Format.printf "verdict: CSP(B) is NP-complete (Schaefer's dichotomy)@."
    | cs ->
      Format.printf "Schaefer classes: %s@."
        (String.concat ", " (List.map Schaefer.Classify.class_name cs));
      Format.printf "verdict: CSP(B) is solvable in polynomial time@.");
    List.iter
      (fun (name, r) ->
        Format.printf "  %s: via closure tests {%s}, via polymorphisms {%s}@." name
          (String.concat ", "
             (List.map Schaefer.Classify.class_name (Schaefer.Classify.relation_classes r)))
          (String.concat ", "
             (List.map Schaefer.Classify.class_name
                (Schaefer.Polymorphism.classes_via_polymorphisms r))))
      (Schaefer.Classify.boolean_relations b)
  end

let classify_cmd =
  let b = Arg.(required & pos 0 (some structure_conv) None & info [] ~docv:"TARGET") in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Classify a Boolean structure in Schaefer's dichotomy")
    Term.(const classify $ b)

let treewidth a =
  let g =
    Treewidth.Graph.of_edges
      ~size:(Relational.Structure.size a)
      (Relational.Structure.gaifman_edges a)
  in
  Format.printf "universe: %d, facts: %d@." (Relational.Structure.size a)
    (Relational.Structure.total_tuples a);
  Format.printf "acyclic (GYO): %b@." (Treewidth.Hypergraph.is_acyclic a);
  Format.printf "Gaifman treewidth <= %d (min-fill heuristic)@."
    (Treewidth.Elimination.treewidth_upper_bound g);
  if Treewidth.Graph.size g <= 16 then
    Format.printf "Gaifman treewidth = %d (exact)@."
      (Treewidth.Elimination.treewidth_exact g);
  Format.printf "incidence treewidth <= %d@." (Treewidth.Incidence.treewidth_upper a)

let treewidth_cmd =
  let a = Arg.(required & pos 0 (some structure_conv) None & info [] ~docv:"SOURCE") in
  Cmd.v
    (Cmd.info "treewidth" ~doc:"Report width measures of a structure")
    Term.(const treewidth $ a)

let count a b = Format.printf "#hom = %d@." (Treewidth.Td_solver.count a b)

let count_cmd =
  let a = Arg.(required & pos 0 (some structure_conv) None & info [] ~docv:"SOURCE") in
  let b = Arg.(required & pos 1 (some structure_conv) None & info [] ~docv:"TARGET") in
  Cmd.v
    (Cmd.info "count"
       ~doc:"Count homomorphisms SOURCE -> TARGET (treewidth dynamic programming)")
    Term.(const count $ a $ b)

let game k a b =
  let wins, stats = Pebble.Game.duplicator_wins_with_stats ~k a b in
  Format.printf "existential %d-pebble game: %s wins@." k
    (if wins then "the Duplicator" else "the Spoiler");
  Format.printf "partial homomorphisms: %d generated, %d pruned@."
    stats.Pebble.Game.initial_configs stats.Pebble.Game.removed;
  if not wins then Format.printf "consequence: no homomorphism SOURCE -> TARGET@."
  else Format.printf "consequence: inconclusive (a homomorphism may or may not exist)@."

let game_cmd =
  let k =
    Arg.(value & opt int 2 & info [ "k"; "pebbles" ] ~docv:"K" ~doc:"Number of pebbles.")
  in
  let a = Arg.(required & pos 0 (some structure_conv) None & info [] ~docv:"SOURCE") in
  let b = Arg.(required & pos 1 (some structure_conv) None & info [] ~docv:"TARGET") in
  Cmd.v
    (Cmd.info "game"
       ~doc:"Play the existential k-pebble game (strong k-consistency)")
    Term.(const game $ k $ a $ b)

let fo_check formula_text a =
  match Folog.Fo_parser.parse formula_text with
  | exception Folog.Fo_parser.Parse_error msg ->
    Format.printf "parse error: %s@." msg;
    exit 1
  | f ->
    Format.printf "formula: %a  (width %d%s)@." Folog.Formula.pp f (Folog.Formula.width f)
      (if Folog.Formula.is_existential_positive f then ", existential positive" else "");
    if Folog.Formula.is_sentence f then
      Format.printf "holds: %b@." (Folog.Fo_eval.holds a f)
    else begin
      let table = Folog.Fo_eval.eval a f in
      Format.printf "free variables: %s@."
        (String.concat ", " (Array.to_list table.Folog.Fo_eval.vars));
      Format.printf "%d satisfying assignment(s)@."
        (List.length table.Folog.Fo_eval.rows);
      List.iter
        (fun row -> Format.printf "  %a@." Relational.Tuple.pp row)
        table.Folog.Fo_eval.rows
    end

let check_cmd =
  let f = Arg.(required & pos 0 (some string) None & info [] ~docv:"FORMULA") in
  let a = Arg.(required & pos 1 (some structure_conv) None & info [] ~docv:"STRUCTURE") in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Evaluate a first-order formula on a structure (bounded-variable model checking)")
    Term.(const fo_check $ f $ a)

let main =
  let doc = "conjunctive-query containment and constraint satisfaction" in
  let info_ =
    Cmd.info "cqc" ~doc
      ~man:
        [
          `S Manpage.s_description;
          `P
            "Tools from the Kolaitis-Vardi reproduction: query containment, \
             minimization and evaluation; CSP solving through the unified \
             tractable-route dispatcher; Schaefer classification; width measures.";
          `S "STRUCTURE FILES";
          `P
            "Structures are text files: a 'size N' line, optional 'rel NAME ARITY' \
             declarations, then one 'NAME e1 e2 ...' line per fact. '#' starts a \
             comment. Use '-' for stdin.";
        ]
  in
  Cmd.group info_
    [ contain_cmd; minimize_cmd; evaluate_cmd; solve_cmd; classify_cmd; treewidth_cmd;
      count_cmd; game_cmd; check_cmd ]

let () = exit (Cmd.eval main)
